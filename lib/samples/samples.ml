open Jir
module B = Builder

type sample = {
  name : string;
  program : Program.t;
  spec : Facade_compiler.Classify.spec;
  expected : Ir.const option;
}

let int_t = Jtype.Prim Jtype.Int
let double_t = Jtype.Prim Jtype.Double

let spec ?(boundary = []) roots = { Facade_compiler.Classify.data_roots = roots; boundary }

let ctor_name = Facade_compiler.Transform.constructor_name

let empty_init () =
  let m = B.create Facade_compiler.Transform.constructor_name in
  B.ret (B.entry m) None;
  B.finish m

(* ---------- Figure 2: Professor / Student ---------- *)

let fig2 =
  let student =
    B.cls "Student" ~fields:[ B.field "id" int_t ] ~methods:[ empty_init () ]
  in
  let professor =
    let init =
      let m = B.create Facade_compiler.Transform.constructor_name in
      let b = B.entry m in
      let len = B.fresh m int_t in
      let arr = B.fresh m (Jtype.Array (Jtype.Ref "Student")) in
      let zero = B.fresh m int_t in
      B.const_i b len 8;
      B.new_array b arr (Jtype.Ref "Student") ~len;
      B.fstore b ~obj:"this" ~field:"students" ~src:arr;
      B.const_i b zero 0;
      B.fstore b ~obj:"this" ~field:"numStudents" ~src:zero;
      B.ret b None;
      B.finish m
    in
    let add_student =
      let m = B.create "addStudent" ~params:[ ("s", Jtype.Ref "Student") ] in
      let b = B.entry m in
      let arr = B.fresh m (Jtype.Array (Jtype.Ref "Student")) in
      let n = B.fresh m int_t in
      let one = B.fresh m int_t in
      let n2 = B.fresh m int_t in
      B.fload b ~dst:arr ~obj:"this" ~field:"students";
      B.fload b ~dst:n ~obj:"this" ~field:"numStudents";
      B.astore b ~arr ~idx:n ~src:"s";
      B.const_i b one 1;
      B.binop b n2 Ir.Add n one;
      B.fstore b ~obj:"this" ~field:"numStudents" ~src:n2;
      B.ret b None;
      B.finish m
    in
    let get_student =
      let m = B.create "getStudent" ~params:[ ("i", int_t) ] ~ret:(Jtype.Ref "Student") in
      let b = B.entry m in
      let arr = B.fresh m (Jtype.Array (Jtype.Ref "Student")) in
      let s = B.fresh m (Jtype.Ref "Student") in
      B.fload b ~dst:arr ~obj:"this" ~field:"students";
      B.aload b ~dst:s ~arr ~idx:"i";
      B.ret b (Some s);
      B.finish m
    in
    B.cls "Professor"
      ~fields:
        [
          B.field "id" int_t;
          B.field "students" (Jtype.Array (Jtype.Ref "Student"));
          B.field "numStudents" int_t;
        ]
      ~methods:[ init; add_student; get_student ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let p = B.fresh m (Jtype.Ref "Professor") in
    let s = B.fresh m (Jtype.Ref "Student") in
    let t = B.fresh m (Jtype.Ref "Student") in
    let seven = B.fresh m int_t in
    let zero = B.fresh m int_t in
    let tid = B.fresh m int_t in
    let n = B.fresh m int_t in
    let r = B.fresh m int_t in
    B.new_obj b p "Professor";
    B.call b ~recv:p ~kind:Ir.Special ~cls:"Professor"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.new_obj b s "Student";
    B.call b ~recv:s ~kind:Ir.Special ~cls:"Student"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b seven 7;
    B.fstore b ~obj:s ~field:"id" ~src:seven;
    B.call b ~recv:p ~kind:Ir.Virtual ~cls:"Professor" ~name:"addStudent" [ s ];
    B.const_i b zero 0;
    B.call b ~ret:t ~recv:p ~kind:Ir.Virtual ~cls:"Professor" ~name:"getStudent" [ zero ];
    B.fload b ~dst:tid ~obj:t ~field:"id";
    B.fload b ~dst:n ~obj:p ~field:"numStudents";
    B.binop b r Ir.Add tid n;
    B.ret b (Some r);
    B.finish m
  in
  let main_cls = B.cls "Main" ~methods:[ main ] in
  {
    name = "fig2";
    program = Program.make ~entry:("Main", "main") [ student; professor; main_cls ];
    spec = spec [ "Professor"; "Student"; "Main" ];
    expected = Some (Ir.Cint 8);
  }

(* ---------- linked list ---------- *)

let node_cls =
  B.cls "Node"
    ~fields:[ B.field "val" int_t; B.field "next" (Jtype.Ref "Node") ]
    ~methods:[ empty_init () ]

let linked_list =
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    B.declare m "head" (Jtype.Ref "Node");
    B.declare m "cur" (Jtype.Ref "Node");
    B.declare m "n" (Jtype.Ref "Node");
    B.declare m "i" int_t;
    B.declare m "sum" int_t;
    B.declare m "one" int_t;
    B.declare m "limit" int_t;
    B.declare m "cond" int_t;
    let b0 = B.entry m in
    let b_cond1 = B.block m in
    let b_body1 = B.block m in
    let b_mid = B.block m in
    let b_cond2 = B.block m in
    let b_body2 = B.block m in
    let b_end = B.block m in
    B.const_null b0 "head";
    B.const_i b0 "i" 0;
    B.const_i b0 "one" 1;
    B.const_i b0 "limit" 50;
    B.jump b0 b_cond1;
    B.binop b_cond1 "cond" Ir.Lt "i" "limit";
    B.branch b_cond1 "cond" ~then_:b_body1 ~else_:b_mid;
    B.new_obj b_body1 "n" "Node";
    B.call b_body1 ~recv:"n" ~kind:Ir.Special ~cls:"Node"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.fstore b_body1 ~obj:"n" ~field:"val" ~src:"i";
    B.fstore b_body1 ~obj:"n" ~field:"next" ~src:"head";
    B.move b_body1 ~dst:"head" ~src:"n";
    B.binop b_body1 "i" Ir.Add "i" "one";
    B.jump b_body1 b_cond1;
    B.const_i b_mid "sum" 0;
    B.move b_mid ~dst:"cur" ~src:"head";
    B.jump b_mid b_cond2;
    B.declare m "nul" (Jtype.Ref "Node");
    B.const_null b_cond2 "nul";
    B.binop b_cond2 "cond" Ir.Ne "cur" "nul";
    B.branch b_cond2 "cond" ~then_:b_body2 ~else_:b_end;
    B.declare m "v" int_t;
    B.fload b_body2 ~dst:"v" ~obj:"cur" ~field:"val";
    B.binop b_body2 "sum" Ir.Add "sum" "v";
    B.fload b_body2 ~dst:"cur" ~obj:"cur" ~field:"next";
    B.jump b_body2 b_cond2;
    B.ret b_end (Some "sum");
    B.finish m
  in
  {
    name = "linked_list";
    program =
      Program.make ~entry:("Main", "main") [ node_cls; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Node"; "Main" ];
    expected = Some (Ir.Cint 1225);
  }

(* ---------- virtual dispatch ---------- *)

let dispatch =
  let area_of body_fn name fields super =
    let area =
      let m = B.create "area" ~ret:int_t in
      body_fn m;
      B.finish m
    in
    B.cls name ?super ~fields ~methods:[ empty_init (); area ]
  in
  let shape =
    area_of
      (fun m ->
        let b = B.entry m in
        let z = B.fresh m int_t in
        B.const_i b z 0;
        B.ret b (Some z))
      "Shape" [ B.field "tag" int_t ] None
  in
  let square =
    area_of
      (fun m ->
        let b = B.entry m in
        let s = B.fresh m int_t in
        let r = B.fresh m int_t in
        B.fload b ~dst:s ~obj:"this" ~field:"side";
        B.binop b r Ir.Mul s s;
        B.ret b (Some r))
      "Square"
      [ B.field "side" int_t ]
      (Some "Shape")
  in
  let circle =
    area_of
      (fun m ->
        let b = B.entry m in
        let r = B.fresh m int_t in
        let three = B.fresh m int_t in
        let r2 = B.fresh m int_t in
        let a = B.fresh m int_t in
        B.fload b ~dst:r ~obj:"this" ~field:"radius";
        B.const_i b three 3;
        B.binop b r2 Ir.Mul r r;
        B.binop b a Ir.Mul three r2;
        B.ret b (Some a))
      "Circle"
      [ B.field "radius" int_t ]
      (Some "Shape")
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let shapes = B.fresh m (Jtype.Array (Jtype.Ref "Shape")) in
    let two = B.fresh m int_t in
    let sq = B.fresh m (Jtype.Ref "Square") in
    let ci = B.fresh m (Jtype.Ref "Circle") in
    let four = B.fresh m int_t in
    let idx0 = B.fresh m int_t in
    let idx1 = B.fresh m int_t in
    let s0 = B.fresh m (Jtype.Ref "Shape") in
    let s1 = B.fresh m (Jtype.Ref "Shape") in
    let a0 = B.fresh m int_t in
    let a1 = B.fresh m int_t in
    let flag = B.fresh m int_t in
    let sq2 = B.fresh m (Jtype.Ref "Square") in
    let side2 = B.fresh m int_t in
    let acc = B.fresh m int_t in
    let acc2 = B.fresh m int_t in
    let acc3 = B.fresh m int_t in
    B.const_i b two 2;
    B.new_array b shapes (Jtype.Ref "Shape") ~len:two;
    B.new_obj b sq "Square";
    B.call b ~recv:sq ~kind:Ir.Special ~cls:"Square"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b four 4;
    B.fstore b ~obj:sq ~field:"side" ~src:four;
    B.new_obj b ci "Circle";
    B.call b ~recv:ci ~kind:Ir.Special ~cls:"Circle"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.fstore b ~obj:ci ~field:"radius" ~src:two;
    B.const_i b idx0 0;
    B.const_i b idx1 1;
    B.astore b ~arr:shapes ~idx:idx0 ~src:sq;
    B.astore b ~arr:shapes ~idx:idx1 ~src:ci;
    B.aload b ~dst:s0 ~arr:shapes ~idx:idx0;
    B.aload b ~dst:s1 ~arr:shapes ~idx:idx1;
    B.call b ~ret:a0 ~recv:s0 ~kind:Ir.Virtual ~cls:"Shape" ~name:"area" [];
    B.call b ~ret:a1 ~recv:s1 ~kind:Ir.Virtual ~cls:"Shape" ~name:"area" [];
    B.instance_of b ~dst:flag ~src:s1 (Jtype.Ref "Square");
    B.add b (Ir.Cast (sq2, s0, Jtype.Ref "Square"));
    B.fload b ~dst:side2 ~obj:sq2 ~field:"side";
    B.binop b acc Ir.Add a0 a1;
    B.binop b acc2 Ir.Add acc flag;
    B.binop b acc3 Ir.Add acc2 side2;
    B.ret b (Some acc3);
    B.finish m
  in
  {
    name = "dispatch";
    program =
      Program.make ~entry:("Main", "main")
        [ shape; square; circle; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Shape"; "Main" ];
    expected = Some (Ir.Cint 32);  (* 16 + 12 + 0 + 4 *)
  }

(* ---------- primitive arrays ---------- *)

let prim_arrays =
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    B.declare m "arr" (Jtype.Array int_t);
    B.declare m "brr" (Jtype.Array int_t);
    B.declare m "drr" (Jtype.Array double_t);
    B.declare m "len" int_t;
    B.declare m "i" int_t;
    B.declare m "one" int_t;
    B.declare m "cond" int_t;
    B.declare m "sum" int_t;
    B.declare m "v" int_t;
    B.declare m "zero" int_t;
    B.declare m "dv" double_t;
    B.declare m "dlen" int_t;
    B.declare m "blen" int_t;
    let b0 = B.entry m in
    let b_cond = B.block m in
    let b_body = B.block m in
    let b_mid = B.block m in
    let b_cond2 = B.block m in
    let b_body2 = B.block m in
    let b_end = B.block m in
    B.const_i b0 "len" 100;
    B.const_i b0 "zero" 0;
    B.const_i b0 "one" 1;
    B.new_array b0 "arr" int_t ~len:"len";
    B.new_array b0 "brr" int_t ~len:"len";
    B.const_i b0 "dlen" 4;
    B.new_array b0 "drr" double_t ~len:"dlen";
    B.const_i b0 "i" 0;
    B.jump b0 b_cond;
    B.binop b_cond "cond" Ir.Lt "i" "len";
    B.branch b_cond "cond" ~then_:b_body ~else_:b_mid;
    B.astore b_body ~arr:"arr" ~idx:"i" ~src:"i";
    B.binop b_body "i" Ir.Add "i" "one";
    B.jump b_body b_cond;
    B.add b_mid
      (Ir.Intrinsic
         ( None,
           Facade_compiler.Rt_names.arraycopy,
           [ Ir.Var "arr"; Ir.Var "zero"; Ir.Var "brr"; Ir.Var "zero"; Ir.Var "len" ] ));
    B.const_i b_mid "i" 0;
    B.const_i b_mid "sum" 0;
    B.alen b_mid ~dst:"blen" ~arr:"brr";
    B.jump b_mid b_cond2;
    B.binop b_cond2 "cond" Ir.Lt "i" "blen";
    B.branch b_cond2 "cond" ~then_:b_body2 ~else_:b_end;
    B.aload b_body2 ~dst:"v" ~arr:"brr" ~idx:"i";
    B.binop b_body2 "sum" Ir.Add "sum" "v";
    B.binop b_body2 "i" Ir.Add "i" "one";
    B.jump b_body2 b_cond2;
    B.const_f b_end "dv" 2.5;
    B.astore b_end ~arr:"drr" ~idx:"one" ~src:"dv";
    B.aload b_end ~dst:"dv" ~arr:"drr" ~idx:"one";
    B.add b_end (Ir.Intrinsic (None, Facade_compiler.Rt_names.print, [ Ir.Var "dv" ]));
    B.ret b_end (Some "sum");
    B.finish m
  in
  {
    name = "prim_arrays";
    program = Program.make ~entry:("Main", "main") [ B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Main" ];
    expected = Some (Ir.Cint 4950);
  }

(* ---------- conversion at interaction points ---------- *)

let conversion =
  let point =
    B.cls "Point"
      ~fields:[ B.field "x" int_t; B.field "y" int_t ]
      ~methods:[ empty_init () ]
  in
  (* Control-path classes: not in the data spec. *)
  let registry =
    B.cls "Registry" ~fields:[ B.field "last" (Jtype.Ref "Point") ] ~methods:[ empty_init () ]
  in
  let util =
    let describe =
      let m = B.create ~static:true "describe" ~params:[ ("p", Jtype.Ref "Point") ] ~ret:int_t in
      let b = B.entry m in
      let x = B.fresh m int_t in
      let y = B.fresh m int_t in
      let hundred = B.fresh m int_t in
      let t = B.fresh m int_t in
      let r = B.fresh m int_t in
      B.fload b ~dst:x ~obj:"p" ~field:"x";
      B.fload b ~dst:y ~obj:"p" ~field:"y";
      B.const_i b hundred 100;
      B.binop b t Ir.Mul x hundred;
      B.binop b r Ir.Add t y;
      B.ret b (Some r);
      B.finish m
    in
    B.cls "Util" ~methods:[ describe ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let p = B.fresh m (Jtype.Ref "Point") in
    let q = B.fresh m (Jtype.Ref "Point") in
    let r = B.fresh m (Jtype.Ref "Registry") in
    let three = B.fresh m int_t in
    let fourv = B.fresh m int_t in
    let d = B.fresh m int_t in
    let qx = B.fresh m int_t in
    let qy = B.fresh m int_t in
    let acc = B.fresh m int_t in
    let acc2 = B.fresh m int_t in
    B.new_obj b p "Point";
    B.call b ~recv:p ~kind:Ir.Special ~cls:"Point"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b three 3;
    B.const_i b fourv 4;
    B.fstore b ~obj:p ~field:"x" ~src:three;
    B.fstore b ~obj:p ~field:"y" ~src:fourv;
    B.new_obj b r "Registry";
    B.call b ~recv:r ~kind:Ir.Special ~cls:"Registry"
      ~name:Facade_compiler.Transform.constructor_name [];
    (* 3.3: data record into a control object's field. *)
    B.fstore b ~obj:r ~field:"last" ~src:p;
    (* 4.3: data read back out of the control path. *)
    B.fload b ~dst:q ~obj:r ~field:"last";
    (* 6.3: data record passed to a control-path method. *)
    B.call b ~ret:d ~kind:Ir.Static ~cls:"Util" ~name:"describe" [ p ];
    B.fload b ~dst:qx ~obj:q ~field:"x";
    B.fload b ~dst:qy ~obj:q ~field:"y";
    B.binop b acc Ir.Add d qx;
    B.binop b acc2 Ir.Add acc qy;
    B.ret b (Some acc2);
    B.finish m
  in
  {
    name = "conversion";
    program =
      Program.make ~entry:("Main", "main")
        [ point; registry; util; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Point"; "Main" ];
    expected = Some (Ir.Cint 311);  (* 304 + 3 + 4 *)
  }

(* ---------- locking ---------- *)

let locking =
  let counter =
    let inc =
      let m = B.create "inc" in
      let b = B.entry m in
      let c = B.fresh m int_t in
      let one = B.fresh m int_t in
      let c2 = B.fresh m int_t in
      B.fload b ~dst:c ~obj:"this" ~field:"count";
      B.const_i b one 1;
      B.binop b c2 Ir.Add c one;
      B.fstore b ~obj:"this" ~field:"count" ~src:c2;
      B.ret b None;
      B.finish m
    in
    B.cls "Counter" ~fields:[ B.field "count" int_t ] ~methods:[ empty_init (); inc ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let a = B.fresh m (Jtype.Ref "Counter") in
    let c = B.fresh m (Jtype.Ref "Counter") in
    let r1 = B.fresh m int_t in
    let r2 = B.fresh m int_t in
    let r = B.fresh m int_t in
    B.new_obj b a "Counter";
    B.call b ~recv:a ~kind:Ir.Special ~cls:"Counter"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.new_obj b c "Counter";
    B.call b ~recv:c ~kind:Ir.Special ~cls:"Counter"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.monitor_enter b a;
    B.call b ~recv:a ~kind:Ir.Virtual ~cls:"Counter" ~name:"inc" [];
    B.monitor_enter b a;  (* reentrant *)
    B.monitor_enter b c;  (* second lock concurrently in use *)
    B.call b ~recv:c ~kind:Ir.Virtual ~cls:"Counter" ~name:"inc" [];
    B.call b ~recv:a ~kind:Ir.Virtual ~cls:"Counter" ~name:"inc" [];
    B.monitor_exit b c;
    B.monitor_exit b a;
    B.monitor_exit b a;
    B.fload b ~dst:r1 ~obj:a ~field:"count";
    B.fload b ~dst:r2 ~obj:c ~field:"count";
    B.binop b r Ir.Add r1 r2;
    B.ret b (Some r);
    B.finish m
  in
  {
    name = "locking";
    program = Program.make ~entry:("Main", "main") [ counter; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Counter"; "Main" ];
    expected = Some (Ir.Cint 3);
  }

(* ---------- iteration-based reclamation ---------- *)

let iteration =
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    B.declare m "total" int_t;
    B.declare m "round" int_t;
    B.declare m "i" int_t;
    B.declare m "one" int_t;
    B.declare m "rounds" int_t;
    B.declare m "count" int_t;
    B.declare m "cond" int_t;
    B.declare m "n" (Jtype.Ref "Node");
    B.declare m "v" int_t;
    let b0 = B.entry m in
    let b_rcond = B.block m in
    let b_rbody = B.block m in
    let b_icond = B.block m in
    let b_ibody = B.block m in
    let b_iend = B.block m in
    let b_end = B.block m in
    B.const_i b0 "total" 0;
    B.const_i b0 "round" 0;
    B.const_i b0 "one" 1;
    B.const_i b0 "rounds" 4;
    B.const_i b0 "count" 500;
    B.jump b0 b_rcond;
    B.binop b_rcond "cond" Ir.Lt "round" "rounds";
    B.branch b_rcond "cond" ~then_:b_rbody ~else_:b_end;
    B.iter_start b_rbody;
    B.const_i b_rbody "i" 0;
    B.jump b_rbody b_icond;
    B.binop b_icond "cond" Ir.Lt "i" "count";
    B.branch b_icond "cond" ~then_:b_ibody ~else_:b_iend;
    B.new_obj b_ibody "n" "Node";
    B.call b_ibody ~recv:"n" ~kind:Ir.Special ~cls:"Node"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.fstore b_ibody ~obj:"n" ~field:"val" ~src:"i";
    B.fload b_ibody ~dst:"v" ~obj:"n" ~field:"val";
    B.binop b_ibody "total" Ir.Add "total" "v";
    B.binop b_ibody "i" Ir.Add "i" "one";
    B.jump b_ibody b_icond;
    B.iter_end b_iend;
    B.binop b_iend "round" Ir.Add "round" "one";
    B.jump b_iend b_rcond;
    B.ret b_end (Some "total");
    B.finish m
  in
  {
    name = "iteration";
    program = Program.make ~entry:("Main", "main") [ node_cls; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Node"; "Main" ];
    expected = Some (Ir.Cint (4 * (499 * 500 / 2)));
  }

(* ---------- statics ---------- *)

let statics =
  let config =
    B.cls "Config"
      ~fields:
        [
          B.field ~static:true "scale" int_t;
          B.field ~static:true "seed" (Jtype.Ref "Node");
        ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let five = B.fresh m int_t in
    let n = B.fresh m (Jtype.Ref "Node") in
    let mm = B.fresh m (Jtype.Ref "Node") in
    let nine = B.fresh m int_t in
    let v = B.fresh m int_t in
    let sc = B.fresh m int_t in
    let r = B.fresh m int_t in
    B.const_i b five 5;
    B.add b (Ir.Static_store ("Config", "scale", five));
    B.new_obj b n "Node";
    B.call b ~recv:n ~kind:Ir.Special ~cls:"Node"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b nine 9;
    B.fstore b ~obj:n ~field:"val" ~src:nine;
    B.add b (Ir.Static_store ("Config", "seed", n));
    B.add b (Ir.Static_load (mm, "Config", "seed"));
    B.fload b ~dst:v ~obj:mm ~field:"val";
    B.add b (Ir.Static_load (sc, "Config", "scale"));
    B.binop b r Ir.Mul v sc;
    B.ret b (Some r);
    B.finish m
  in
  {
    name = "statics";
    program =
      Program.make ~entry:("Main", "main") [ node_cls; config; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Node"; "Config"; "Main" ];
    expected = Some (Ir.Cint 45);
  }

(* ---------- strings ---------- *)

let strings =
  let tag =
    B.cls "Tag"
      ~fields:[ B.field "name" (Jtype.Ref Jtype.string_class) ]
      ~methods:[ empty_init () ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let t = B.fresh m (Jtype.Ref "Tag") in
    let s = B.fresh m (Jtype.Ref Jtype.string_class) in
    let s2 = B.fresh m (Jtype.Ref Jtype.string_class) in
    let eq = B.fresh m int_t in
    B.new_obj b t "Tag";
    B.call b ~recv:t ~kind:Ir.Special ~cls:"Tag"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.add b (Ir.Const (s, Ir.Cstr "hello"));
    B.fstore b ~obj:t ~field:"name" ~src:s;
    B.fload b ~dst:s2 ~obj:t ~field:"name";
    B.add b (Ir.Const (s, Ir.Cstr "hello"));
    B.binop b eq Ir.Eq s s2;
    B.ret b (Some eq);
    B.finish m
  in
  {
    name = "strings";
    program = Program.make ~entry:("Main", "main") [ tag; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Tag"; "Main" ];
    expected = Some (Ir.Cint 1);
  }

(* ---------- interface dispatch (IFacade generation, paper 3.2) ---------- *)

let interfaces =
  let measurable =
    let area = B.create "area" ~ret:int_t in
    (* Interface method: signature only. *)
    let m = B.finish area in
    B.cls "Measurable" ~interface:true ~methods:[ { m with Ir.body = [||] } ]
  in
  let rect =
    let area =
      let m = B.create "area" ~ret:int_t in
      let b = B.entry m in
      let w = B.fresh m int_t in
      let h = B.fresh m int_t in
      let r = B.fresh m int_t in
      B.fload b ~dst:w ~obj:"this" ~field:"w";
      B.fload b ~dst:h ~obj:"this" ~field:"h";
      B.binop b r Ir.Mul w h;
      B.ret b (Some r);
      B.finish m
    in
    B.cls "Rect" ~interfaces:[ "Measurable" ]
      ~fields:[ B.field "w" int_t; B.field "h" int_t ]
      ~methods:[ empty_init (); area ]
  in
  let disk =
    let area =
      let m = B.create "area" ~ret:int_t in
      let b = B.entry m in
      let r = B.fresh m int_t in
      let three = B.fresh m int_t in
      let r2 = B.fresh m int_t in
      let a = B.fresh m int_t in
      B.fload b ~dst:r ~obj:"this" ~field:"r";
      B.const_i b three 3;
      B.binop b r2 Ir.Mul r r;
      B.binop b a Ir.Mul three r2;
      B.ret b (Some a);
      B.finish m
    in
    B.cls "Disk" ~interfaces:[ "Measurable" ]
      ~fields:[ B.field "r" int_t ]
      ~methods:[ empty_init (); area ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let rect_v = B.fresh m (Jtype.Ref "Rect") in
    let disk_v = B.fresh m (Jtype.Ref "Disk") in
    let meas = B.fresh m (Jtype.Ref "Measurable") in
    let four = B.fresh m int_t in
    let five = B.fresh m int_t in
    let two = B.fresh m int_t in
    let a1 = B.fresh m int_t in
    let a2 = B.fresh m int_t in
    let flag = B.fresh m int_t in
    let acc = B.fresh m int_t in
    let acc2 = B.fresh m int_t in
    B.new_obj b rect_v "Rect";
    B.call b ~recv:rect_v ~kind:Ir.Special ~cls:"Rect"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b four 4;
    B.const_i b five 5;
    B.fstore b ~obj:rect_v ~field:"w" ~src:four;
    B.fstore b ~obj:rect_v ~field:"h" ~src:five;
    B.new_obj b disk_v "Disk";
    B.call b ~recv:disk_v ~kind:Ir.Special ~cls:"Disk"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.const_i b two 2;
    B.fstore b ~obj:disk_v ~field:"r" ~src:two;
    (* Dispatch through the interface type, as Java client code would. *)
    B.move b ~dst:meas ~src:rect_v;
    B.call b ~ret:a1 ~recv:meas ~kind:Ir.Virtual ~cls:"Measurable" ~name:"area" [];
    B.move b ~dst:meas ~src:disk_v;
    B.call b ~ret:a2 ~recv:meas ~kind:Ir.Virtual ~cls:"Measurable" ~name:"area" [];
    B.instance_of b ~dst:flag ~src:meas (Jtype.Ref "Disk");
    B.binop b acc Ir.Add a1 a2;
    B.binop b acc2 Ir.Add acc flag;
    B.ret b (Some acc2);
    B.finish m
  in
  {
    name = "interfaces";
    program =
      Program.make ~entry:("Main", "main")
        [ measurable; rect; disk; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Measurable"; "Rect"; "Disk"; "Main" ];
    expected = Some (Ir.Cint 33);  (* 20 + 12 + 1 *)
  }

(* ---------- nested iterations (sub-iterations, paper 3.6) ---------- *)

let nested_iteration =
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    B.declare m "total" int_t;
    B.declare m "outer" int_t;
    B.declare m "inner" int_t;
    B.declare m "one" int_t;
    B.declare m "cond" int_t;
    B.declare m "limo" int_t;
    B.declare m "limi" int_t;
    B.declare m "n" (Jtype.Ref "Node");
    B.declare m "v" int_t;
    let b0 = B.entry m in
    let b_ocond = B.block m in
    let b_obody = B.block m in
    let b_icond = B.block m in
    let b_ibody = B.block m in
    let b_iend = B.block m in
    let b_end = B.block m in
    B.const_i b0 "total" 0;
    B.const_i b0 "outer" 0;
    B.const_i b0 "one" 1;
    B.const_i b0 "limo" 3;
    B.const_i b0 "limi" 4;
    B.jump b0 b_ocond;
    B.binop b_ocond "cond" Ir.Lt "outer" "limo";
    B.branch b_ocond "cond" ~then_:b_obody ~else_:b_end;
    B.iter_start b_obody;
    (* A record allocated in the outer iteration, read after the inner
       sub-iterations finish. *)
    B.new_obj b_obody "n" "Node";
    B.call b_obody ~recv:"n" ~kind:Ir.Special ~cls:"Node"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.fstore b_obody ~obj:"n" ~field:"val" ~src:"outer";
    B.const_i b_obody "inner" 0;
    B.jump b_obody b_icond;
    B.binop b_icond "cond" Ir.Lt "inner" "limi";
    B.branch b_icond "cond" ~then_:b_ibody ~else_:b_iend;
    B.iter_start b_ibody;
    B.declare m "tmp" (Jtype.Ref "Node");
    B.new_obj b_ibody "tmp" "Node";
    B.call b_ibody ~recv:"tmp" ~kind:Ir.Special ~cls:"Node"
      ~name:Facade_compiler.Transform.constructor_name [];
    B.fstore b_ibody ~obj:"tmp" ~field:"val" ~src:"inner";
    B.fload b_ibody ~dst:"v" ~obj:"tmp" ~field:"val";
    B.binop b_ibody "total" Ir.Add "total" "v";
    B.iter_end b_ibody;
    B.binop b_ibody "inner" Ir.Add "inner" "one";
    B.jump b_ibody b_icond;
    (* The outer record is still alive: its pages were not recycled by the
       inner iteration ends. *)
    B.fload b_iend ~dst:"v" ~obj:"n" ~field:"val";
    B.binop b_iend "total" Ir.Add "total" "v";
    B.iter_end b_iend;
    B.binop b_iend "outer" Ir.Add "outer" "one";
    B.jump b_iend b_ocond;
    B.ret b_end (Some "total");
    B.finish m
  in
  {
    name = "nested_iteration";
    program = Program.make ~entry:("Main", "main") [ node_cls; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Node"; "Main" ];
    (* 3 outer x (0+1+2+3 inner) + (0+1+2 outer vals) = 18 + 3 = 21 *)
    expected = Some (Ir.Cint 21);
  }

(* ---------- JDK-style collections as data classes (paper 3.6) ---------- *)


let array_list_name ~elem = "ArrayList_" ^ elem
let int_hash_map_name ~elem = "IntHashMap_" ^ elem

(* ---------- ArrayList ---------- *)

let array_list ~elem =
  let name = array_list_name ~elem in
  let elem_t = Jtype.Ref elem in
  let arr_t = Jtype.Array elem_t in
  let init =
    let m = B.create ctor_name in
    let b = B.entry m in
    let cap = B.fresh m int_t in
    let arr = B.fresh m arr_t in
    let zero = B.fresh m int_t in
    B.const_i b cap 4;
    B.new_array b arr elem_t ~len:cap;
    B.fstore b ~obj:"this" ~field:"data" ~src:arr;
    B.const_i b zero 0;
    B.fstore b ~obj:"this" ~field:"size" ~src:zero;
    B.ret b None;
    B.finish m
  in
  let add =
    let m = B.create "add" ~params:[ ("e", elem_t) ] in
    B.declare m "n" int_t;
    B.declare m "arr" arr_t;
    B.declare m "cap" int_t;
    B.declare m "cond" int_t;
    B.declare m "two" int_t;
    B.declare m "ncap" int_t;
    B.declare m "narr" arr_t;
    B.declare m "zero" int_t;
    B.declare m "arr2" arr_t;
    B.declare m "one" int_t;
    B.declare m "n1" int_t;
    let b0 = B.entry m in
    let b_grow = B.block m in
    let b_store = B.block m in
    B.fload b0 ~dst:"n" ~obj:"this" ~field:"size";
    B.fload b0 ~dst:"arr" ~obj:"this" ~field:"data";
    B.alen b0 ~dst:"cap" ~arr:"arr";
    B.binop b0 "cond" Ir.Eq "n" "cap";
    B.branch b0 "cond" ~then_:b_grow ~else_:b_store;
    (* Growth doubles the backing array and copies with the modelled
       System.arraycopy — on pages in P'. *)
    B.const_i b_grow "two" 2;
    B.binop b_grow "ncap" Ir.Mul "cap" "two";
    B.new_array b_grow "narr" elem_t ~len:"ncap";
    B.const_i b_grow "zero" 0;
    B.add b_grow
      (Ir.Intrinsic
         ( None,
           Facade_compiler.Rt_names.arraycopy,
           [ Ir.Var "arr"; Ir.Var "zero"; Ir.Var "narr"; Ir.Var "zero"; Ir.Var "n" ] ));
    B.fstore b_grow ~obj:"this" ~field:"data" ~src:"narr";
    B.jump b_grow b_store;
    B.fload b_store ~dst:"arr2" ~obj:"this" ~field:"data";
    B.astore b_store ~arr:"arr2" ~idx:"n" ~src:"e";
    B.const_i b_store "one" 1;
    B.binop b_store "n1" Ir.Add "n" "one";
    B.fstore b_store ~obj:"this" ~field:"size" ~src:"n1";
    B.ret b_store None;
    B.finish m
  in
  let get =
    let m = B.create "get" ~params:[ ("i", int_t) ] ~ret:elem_t in
    let b = B.entry m in
    let arr = B.fresh m arr_t in
    let v = B.fresh m elem_t in
    B.fload b ~dst:arr ~obj:"this" ~field:"data";
    B.aload b ~dst:v ~arr ~idx:"i";
    B.ret b (Some v);
    B.finish m
  in
  let size =
    let m = B.create "size" ~ret:int_t in
    let b = B.entry m in
    let n = B.fresh m int_t in
    B.fload b ~dst:n ~obj:"this" ~field:"size";
    B.ret b (Some n);
    B.finish m
  in
  B.cls name
    ~fields:[ B.field "data" arr_t; B.field "size" int_t ]
    ~methods:[ init; add; get; size ]

(* ---------- IntHashMap (open addressing, linear probing) ---------- *)

let int_hash_map ~elem =
  let name = int_hash_map_name ~elem in
  let elem_t = Jtype.Ref elem in
  let vals_t = Jtype.Array elem_t in
  let ints_t = Jtype.Array int_t in
  let init =
    let m = B.create ctor_name in
    let b = B.entry m in
    let cap = B.fresh m int_t in
    let ks = B.fresh m ints_t in
    let vs = B.fresh m vals_t in
    let ss = B.fresh m ints_t in
    let zero = B.fresh m int_t in
    B.const_i b cap 8;
    B.new_array b ks int_t ~len:cap;
    B.new_array b vs elem_t ~len:cap;
    B.new_array b ss int_t ~len:cap;
    B.fstore b ~obj:"this" ~field:"keys" ~src:ks;
    B.fstore b ~obj:"this" ~field:"vals" ~src:vs;
    B.fstore b ~obj:"this" ~field:"states" ~src:ss;
    B.const_i b zero 0;
    B.fstore b ~obj:"this" ~field:"size" ~src:zero;
    B.ret b None;
    B.finish m
  in
  let put =
    let m = B.create "put" ~params:[ ("k", int_t); ("v", elem_t) ] in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("n", int_t); ("ks", ints_t); ("vs", vals_t); ("ss", ints_t); ("cap", int_t);
        ("n2", int_t); ("two", int_t); ("cond", int_t); ("idx", int_t); ("st", int_t);
        ("ek", int_t); ("one", int_t); ("n1", int_t); ("oneS", int_t);
      ];
    let b0 = B.entry m in
    let b_resize = B.block m in
    let b_put = B.block m in
    let b_probe = B.block m in
    let b_checkkey = B.block m in
    let b_next = B.block m in
    let b_insert = B.block m in
    let b_overwrite = B.block m in
    B.fload b0 ~dst:"n" ~obj:"this" ~field:"size";
    B.fload b0 ~dst:"ks" ~obj:"this" ~field:"keys";
    B.alen b0 ~dst:"cap" ~arr:"ks";
    B.const_i b0 "two" 2;
    B.binop b0 "n2" Ir.Mul "n" "two";
    B.binop b0 "cond" Ir.Ge "n2" "cap";
    B.branch b0 "cond" ~then_:b_resize ~else_:b_put;
    B.call b_resize ~recv:"this" ~kind:Ir.Virtual ~cls:name ~name:"resize" [];
    B.jump b_resize b_put;
    B.fload b_put ~dst:"ks" ~obj:"this" ~field:"keys";
    B.fload b_put ~dst:"vs" ~obj:"this" ~field:"vals";
    B.fload b_put ~dst:"ss" ~obj:"this" ~field:"states";
    B.alen b_put ~dst:"cap" ~arr:"ks";
    B.binop b_put "idx" Ir.Rem "k" "cap";
    B.jump b_put b_probe;
    B.aload b_probe ~dst:"st" ~arr:"ss" ~idx:"idx";
    B.branch b_probe "st" ~then_:b_checkkey ~else_:b_insert;
    B.aload b_checkkey ~dst:"ek" ~arr:"ks" ~idx:"idx";
    B.binop b_checkkey "cond" Ir.Eq "ek" "k";
    B.branch b_checkkey "cond" ~then_:b_overwrite ~else_:b_next;
    B.const_i b_next "one" 1;
    B.binop b_next "idx" Ir.Add "idx" "one";
    B.binop b_next "idx" Ir.Rem "idx" "cap";
    B.jump b_next b_probe;
    B.astore b_insert ~arr:"ks" ~idx:"idx" ~src:"k";
    B.astore b_insert ~arr:"vs" ~idx:"idx" ~src:"v";
    B.const_i b_insert "oneS" 1;
    B.astore b_insert ~arr:"ss" ~idx:"idx" ~src:"oneS";
    B.fload b_insert ~dst:"n" ~obj:"this" ~field:"size";
    B.const_i b_insert "one" 1;
    B.binop b_insert "n1" Ir.Add "n" "one";
    B.fstore b_insert ~obj:"this" ~field:"size" ~src:"n1";
    B.ret b_insert None;
    B.astore b_overwrite ~arr:"vs" ~idx:"idx" ~src:"v";
    B.ret b_overwrite None;
    B.finish m
  in
  let resize =
    let m = B.create "resize" in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("oks", ints_t); ("ovs", vals_t); ("oss", ints_t); ("ocap", int_t); ("two", int_t);
        ("ncap", int_t); ("nks", ints_t); ("nvs", vals_t); ("nss", ints_t); ("zero", int_t);
        ("i", int_t); ("cond", int_t); ("st", int_t); ("k", int_t); ("v", elem_t);
        ("one", int_t);
      ];
    let b0 = B.entry m in
    let b_loop = B.block m in
    let b_body = B.block m in
    let b_reput = B.block m in
    let b_inc = B.block m in
    let b_end = B.block m in
    B.fload b0 ~dst:"oks" ~obj:"this" ~field:"keys";
    B.fload b0 ~dst:"ovs" ~obj:"this" ~field:"vals";
    B.fload b0 ~dst:"oss" ~obj:"this" ~field:"states";
    B.alen b0 ~dst:"ocap" ~arr:"oks";
    B.const_i b0 "two" 2;
    B.binop b0 "ncap" Ir.Mul "ocap" "two";
    B.new_array b0 "nks" int_t ~len:"ncap";
    B.new_array b0 "nvs" elem_t ~len:"ncap";
    B.new_array b0 "nss" int_t ~len:"ncap";
    B.fstore b0 ~obj:"this" ~field:"keys" ~src:"nks";
    B.fstore b0 ~obj:"this" ~field:"vals" ~src:"nvs";
    B.fstore b0 ~obj:"this" ~field:"states" ~src:"nss";
    B.const_i b0 "zero" 0;
    B.fstore b0 ~obj:"this" ~field:"size" ~src:"zero";
    B.const_i b0 "i" 0;
    B.jump b0 b_loop;
    B.binop b_loop "cond" Ir.Lt "i" "ocap";
    B.branch b_loop "cond" ~then_:b_body ~else_:b_end;
    B.aload b_body ~dst:"st" ~arr:"oss" ~idx:"i";
    B.branch b_body "st" ~then_:b_reput ~else_:b_inc;
    B.aload b_reput ~dst:"k" ~arr:"oks" ~idx:"i";
    B.aload b_reput ~dst:"v" ~arr:"ovs" ~idx:"i";
    B.call b_reput ~recv:"this" ~kind:Ir.Virtual ~cls:name ~name:"put" [ "k"; "v" ];
    B.jump b_reput b_inc;
    B.const_i b_inc "one" 1;
    B.binop b_inc "i" Ir.Add "i" "one";
    B.jump b_inc b_loop;
    B.ret b_end None;
    B.finish m
  in
  let get =
    let m = B.create "get" ~params:[ ("k", int_t) ] ~ret:elem_t in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("ks", ints_t); ("vs", vals_t); ("ss", ints_t); ("cap", int_t); ("idx", int_t);
        ("st", int_t); ("ek", int_t); ("cond", int_t); ("one", int_t); ("v", elem_t);
        ("vnull", elem_t);
      ];
    let b0 = B.entry m in
    let b_probe = B.block m in
    let b_check = B.block m in
    let b_next = B.block m in
    let b_found = B.block m in
    let b_null = B.block m in
    B.fload b0 ~dst:"ks" ~obj:"this" ~field:"keys";
    B.fload b0 ~dst:"vs" ~obj:"this" ~field:"vals";
    B.fload b0 ~dst:"ss" ~obj:"this" ~field:"states";
    B.alen b0 ~dst:"cap" ~arr:"ks";
    B.binop b0 "idx" Ir.Rem "k" "cap";
    B.jump b0 b_probe;
    B.aload b_probe ~dst:"st" ~arr:"ss" ~idx:"idx";
    B.branch b_probe "st" ~then_:b_check ~else_:b_null;
    B.aload b_check ~dst:"ek" ~arr:"ks" ~idx:"idx";
    B.binop b_check "cond" Ir.Eq "ek" "k";
    B.branch b_check "cond" ~then_:b_found ~else_:b_next;
    B.const_i b_next "one" 1;
    B.binop b_next "idx" Ir.Add "idx" "one";
    B.binop b_next "idx" Ir.Rem "idx" "cap";
    B.jump b_next b_probe;
    B.aload b_found ~dst:"v" ~arr:"vs" ~idx:"idx";
    B.ret b_found (Some "v");
    B.const_null b_null "vnull";
    B.ret b_null (Some "vnull");
    B.finish m
  in
  let size =
    let m = B.create "size" ~ret:int_t in
    let b = B.entry m in
    let n = B.fresh m int_t in
    B.fload b ~dst:n ~obj:"this" ~field:"size";
    B.ret b (Some n);
    B.finish m
  in
  B.cls name
    ~fields:
      [
        B.field "keys" ints_t;
        B.field "vals" vals_t;
        B.field "states" ints_t;
        B.field "size" int_t;
      ]
    ~methods:[ init; put; resize; get; size ]

(* ---------- the sample program ---------- *)

let collections =
  let item =
    B.cls "Item"
      ~fields:[ B.field "key" int_t; B.field "weight" int_t ]
      ~methods:
        [
          (let m = B.create ctor_name in
           B.ret (B.entry m) None;
           B.finish m);
        ]
  in
  let list_name = array_list_name ~elem:"Item" in
  let map_name = int_hash_map_name ~elem:"Item" in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("list", Jtype.Ref list_name); ("map", Jtype.Ref map_name);
        ("it", Jtype.Ref "Item"); ("it2", Jtype.Ref "Item"); ("i", int_t); ("one", int_t);
        ("limit", int_t); ("cond", int_t); ("w", int_t); ("k", int_t); ("three", int_t);
        ("acc", int_t); ("vnull", Jtype.Ref "Item"); ("missing", Jtype.Ref "Item");
        ("isnull", int_t); ("big", int_t); ("sz1", int_t); ("sz2", int_t); ("r", int_t);
        ("w2", int_t);
      ];
    let b0 = B.entry m in
    let b_fill_cond = B.block m in
    let b_fill = B.block m in
    let b_read_init = B.block m in
    let b_read_cond = B.block m in
    let b_read = B.block m in
    let b_fin = B.block m in
    B.new_obj b0 "list" list_name;
    B.call b0 ~recv:"list" ~kind:Ir.Special ~cls:list_name ~name:ctor_name [];
    B.new_obj b0 "map" map_name;
    B.call b0 ~recv:"map" ~kind:Ir.Special ~cls:map_name ~name:ctor_name [];
    B.const_i b0 "i" 0;
    B.const_i b0 "one" 1;
    B.const_i b0 "three" 3;
    B.const_i b0 "limit" 20;
    B.jump b0 b_fill_cond;
    B.binop b_fill_cond "cond" Ir.Lt "i" "limit";
    B.branch b_fill_cond "cond" ~then_:b_fill ~else_:b_read_init;
    B.new_obj b_fill "it" "Item";
    B.call b_fill ~recv:"it" ~kind:Ir.Special ~cls:"Item" ~name:ctor_name [];
    B.binop b_fill "k" Ir.Mul "i" "three";
    B.fstore b_fill ~obj:"it" ~field:"key" ~src:"k";
    B.binop b_fill "w" Ir.Mul "i" "i";
    B.fstore b_fill ~obj:"it" ~field:"weight" ~src:"w";
    B.call b_fill ~recv:"list" ~kind:Ir.Virtual ~cls:list_name ~name:"add" [ "it" ];
    B.call b_fill ~recv:"map" ~kind:Ir.Virtual ~cls:map_name ~name:"put" [ "k"; "it" ];
    B.binop b_fill "i" Ir.Add "i" "one";
    B.jump b_fill b_fill_cond;
    B.const_i b_read_init "acc" 0;
    B.const_i b_read_init "i" 0;
    B.jump b_read_init b_read_cond;
    B.binop b_read_cond "cond" Ir.Lt "i" "limit";
    B.branch b_read_cond "cond" ~then_:b_read ~else_:b_fin;
    (* Read back through both collections and check they agree. *)
    B.call b_read ~ret:"it" ~recv:"list" ~kind:Ir.Virtual ~cls:list_name ~name:"get" [ "i" ];
    B.fload b_read ~dst:"w" ~obj:"it" ~field:"weight";
    B.binop b_read "k" Ir.Mul "i" "three";
    B.call b_read ~ret:"it2" ~recv:"map" ~kind:Ir.Virtual ~cls:map_name ~name:"get" [ "k" ];
    B.fload b_read ~dst:"w2" ~obj:"it2" ~field:"weight";
    B.binop b_read "acc" Ir.Add "acc" "w";
    B.binop b_read "acc" Ir.Add "acc" "w2";
    B.binop b_read "i" Ir.Add "i" "one";
    B.jump b_read b_read_cond;
    B.const_i b_fin "big" 999;
    B.call b_fin ~ret:"missing" ~recv:"map" ~kind:Ir.Virtual ~cls:map_name ~name:"get" [ "big" ];
    B.const_null b_fin "vnull";
    B.binop b_fin "isnull" Ir.Eq "missing" "vnull";
    B.call b_fin ~ret:"sz1" ~recv:"list" ~kind:Ir.Virtual ~cls:list_name ~name:"size" [];
    B.call b_fin ~ret:"sz2" ~recv:"map" ~kind:Ir.Virtual ~cls:map_name ~name:"size" [];
    B.binop b_fin "r" Ir.Add "acc" "isnull";
    B.binop b_fin "r" Ir.Add "r" "sz1";
    B.binop b_fin "r" Ir.Add "r" "sz2";
    B.ret b_fin (Some "r");
    B.finish m
  in
  {
    name = "collections";
    program =
      Program.make ~entry:("Main", "main")
        [
          item;
          array_list ~elem:"Item";
          int_hash_map ~elem:"Item";
          B.cls "Main" ~methods:[ main ];
        ];
    spec =
      {
        Facade_compiler.Classify.data_roots = [ "Item"; list_name; map_name; "Main" ];
        boundary = [];
      };
    (* acc = 2 * sum i^2 (i<20) = 4940; + isnull 1 + sizes 20 + 20 *)
    expected = Some (Ir.Cint 4981);
  }


(* ---------- threads: per-thread pools and the shared lock pool ---------- *)

let threads =
  let worker =
    (* A Counter is both the shared data and the Runnable. *)
    let inc =
      let m = B.create "inc" in
      let b = B.entry m in
      let c = B.fresh m int_t in
      let one = B.fresh m int_t in
      let c2 = B.fresh m int_t in
      B.monitor_enter b "this";
      B.fload b ~dst:c ~obj:"this" ~field:"count";
      B.const_i b one 1;
      B.binop b c2 Ir.Add c one;
      B.fstore b ~obj:"this" ~field:"count" ~src:c2;
      B.monitor_exit b "this";
      B.ret b None;
      B.finish m
    in
    let run =
      let m = B.create "run" in
      B.declare m "i" int_t;
      B.declare m "one" int_t;
      B.declare m "limit" int_t;
      B.declare m "cond" int_t;
      let b0 = B.entry m in
      let b_cond = B.block m in
      let b_body = B.block m in
      let b_end = B.block m in
      B.const_i b0 "i" 0;
      B.const_i b0 "one" 1;
      B.const_i b0 "limit" 100;
      B.jump b0 b_cond;
      B.binop b_cond "cond" Ir.Lt "i" "limit";
      B.branch b_cond "cond" ~then_:b_body ~else_:b_end;
      B.call b_body ~recv:"this" ~kind:Ir.Virtual ~cls:"SharedCounter" ~name:"inc" [];
      B.binop b_body "i" Ir.Add "i" "one";
      B.jump b_body b_cond;
      B.ret b_end None;
      B.finish m
    in
    B.cls "SharedCounter"
      ~fields:[ B.field "count" int_t ]
      ~methods:[ empty_init (); inc; run ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let c = B.fresh m (Jtype.Ref "SharedCounter") in
    let r = B.fresh m int_t in
    B.new_obj b c "SharedCounter";
    B.call b ~recv:c ~kind:Ir.Special ~cls:"SharedCounter" ~name:ctor_name [];
    (* Two worker threads plus the main thread all bump the counter. The
       iteration frame is the join barrier: the spawner only reads [count]
       after iter_end, so the result is deterministic even when the
       runnables execute on pool domains. *)
    B.iter_start b;
    B.add b (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var c ]));
    B.add b (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var c ]));
    B.iter_end b;
    B.call b ~recv:c ~kind:Ir.Virtual ~cls:"SharedCounter" ~name:"inc" [];
    B.fload b ~dst:r ~obj:c ~field:"count";
    B.ret b (Some r);
    B.finish m
  in
  {
    name = "threads";
    program =
      Program.make ~entry:("Main", "main") [ worker; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "SharedCounter"; "Main" ];
    expected = Some (Ir.Cint 201);
  }

(* The seeded racy twin of [threads]: same spawn/join structure, but [inc]
   bumps the shared counter without taking the monitor. The static race
   detector must flag it; it is exported for the analysis tests but kept
   out of [all] (the parallel differential would be genuinely racy).
   Sequentially the spawned runnables execute inline, so the expected
   result still holds on the non-parallel paths. *)
let racy_counter =
  let worker =
    let inc =
      let m = B.create "inc" in
      let b = B.entry m in
      let c = B.fresh m int_t in
      let one = B.fresh m int_t in
      let c2 = B.fresh m int_t in
      B.fload b ~dst:c ~obj:"this" ~field:"count";
      B.const_i b one 1;
      B.binop b c2 Ir.Add c one;
      B.fstore b ~obj:"this" ~field:"count" ~src:c2;
      B.ret b None;
      B.finish m
    in
    let run =
      let m = B.create "run" in
      B.declare m "i" int_t;
      B.declare m "one" int_t;
      B.declare m "limit" int_t;
      B.declare m "cond" int_t;
      let b0 = B.entry m in
      let b_cond = B.block m in
      let b_body = B.block m in
      let b_end = B.block m in
      B.const_i b0 "i" 0;
      B.const_i b0 "one" 1;
      B.const_i b0 "limit" 100;
      B.jump b0 b_cond;
      B.binop b_cond "cond" Ir.Lt "i" "limit";
      B.branch b_cond "cond" ~then_:b_body ~else_:b_end;
      B.call b_body ~recv:"this" ~kind:Ir.Virtual ~cls:"SharedCounter" ~name:"inc" [];
      B.binop b_body "i" Ir.Add "i" "one";
      B.jump b_body b_cond;
      B.ret b_end None;
      B.finish m
    in
    B.cls "SharedCounter"
      ~fields:[ B.field "count" int_t ]
      ~methods:[ empty_init (); inc; run ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let c = B.fresh m (Jtype.Ref "SharedCounter") in
    let r = B.fresh m int_t in
    B.new_obj b c "SharedCounter";
    B.call b ~recv:c ~kind:Ir.Special ~cls:"SharedCounter" ~name:ctor_name [];
    B.iter_start b;
    B.add b (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var c ]));
    B.add b (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var c ]));
    B.iter_end b;
    B.call b ~recv:c ~kind:Ir.Virtual ~cls:"SharedCounter" ~name:"inc" [];
    B.fload b ~dst:r ~obj:c ~field:"count";
    B.ret b (Some r);
    B.finish m
  in
  {
    name = "racy_counter";
    program =
      Program.make ~entry:("Main", "main") [ worker; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "SharedCounter"; "Main" ];
    expected = Some (Ir.Cint 201);
  }

(* ---------- boundary classes (annotated data fields, paper 4.1) ---------- *)

let boundary =
  let meta =
    B.cls "Meta" ~fields:[ B.field "id" int_t ] ~methods:[ empty_init () ]
  in
  (* Holder stays a heap class; its [cache] field is annotated as a data
     field and becomes a page reference in P'. *)
  let holder =
    let set =
      let m = B.create "set" ~params:[ ("mv", Jtype.Ref "Meta") ] in
      let b = B.entry m in
      let h = B.fresh m int_t in
      let one = B.fresh m int_t in
      let h2 = B.fresh m int_t in
      B.fstore b ~obj:"this" ~field:"cache" ~src:"mv";
      B.fload b ~dst:h ~obj:"this" ~field:"hits";
      B.const_i b one 1;
      B.binop b h2 Ir.Add h one;
      B.fstore b ~obj:"this" ~field:"hits" ~src:h2;
      B.ret b None;
      B.finish m
    in
    let get =
      let m = B.create "get" ~ret:(Jtype.Ref "Meta") in
      let b = B.entry m in
      let v = B.fresh m (Jtype.Ref "Meta") in
      B.fload b ~dst:v ~obj:"this" ~field:"cache";
      B.ret b (Some v);
      B.finish m
    in
    B.cls "Holder"
      ~fields:[ B.field "cache" (Jtype.Ref "Meta"); B.field "hits" int_t ]
      ~methods:[ empty_init (); set; get ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let h = B.fresh m (Jtype.Ref "Holder") in
    let mv = B.fresh m (Jtype.Ref "Meta") in
    let g = B.fresh m (Jtype.Ref "Meta") in
    let five = B.fresh m int_t in
    let gid = B.fresh m int_t in
    let hits = B.fresh m int_t in
    let r = B.fresh m int_t in
    B.new_obj b h "Holder";
    B.call b ~recv:h ~kind:Ir.Special ~cls:"Holder" ~name:ctor_name [];
    B.new_obj b mv "Meta";
    B.call b ~recv:mv ~kind:Ir.Special ~cls:"Meta" ~name:ctor_name [];
    B.const_i b five 5;
    B.fstore b ~obj:mv ~field:"id" ~src:five;
    B.call b ~recv:h ~kind:Ir.Virtual ~cls:"Holder" ~name:"set" [ mv ];
    B.call b ~ret:g ~recv:h ~kind:Ir.Virtual ~cls:"Holder" ~name:"get" [];
    B.fload b ~dst:gid ~obj:g ~field:"id";
    B.fload b ~dst:hits ~obj:h ~field:"hits";
    B.binop b r Ir.Add gid hits;
    B.ret b (Some r);
    B.finish m
  in
  {
    name = "boundary";
    program =
      Program.make ~entry:("Main", "main") [ meta; holder; B.cls "Main" ~methods:[ main ] ];
    spec = spec ~boundary:[ ("Holder", [ "cache" ]) ] [ "Meta"; "Main" ];
    expected = Some (Ir.Cint 6);
  }

(* ---------- deep (recursive, cyclic) conversion at IPs ---------- *)

let deep_conversion =
  let chain =
    B.cls "Chain"
      ~fields:
        [
          B.field "v" int_t;
          B.field "next" (Jtype.Ref "Chain");
          B.field "nums" (Jtype.Array int_t);
        ]
      ~methods:[ empty_init () ]
  in
  (* Control-path container: the chain crosses the boundary both ways. *)
  let box = B.cls "Box" ~fields:[ B.field "kept" (Jtype.Ref "Chain") ] ~methods:[ empty_init () ] in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let c1 = B.fresh m (Jtype.Ref "Chain") in
    let c2 = B.fresh m (Jtype.Ref "Chain") in
    let bx = B.fresh m (Jtype.Ref "Box") in
    let q = B.fresh m (Jtype.Ref "Chain") in
    let q2 = B.fresh m (Jtype.Ref "Chain") in
    let q3 = B.fresh m (Jtype.Ref "Chain") in
    let arr = B.fresh m (Jtype.Array int_t) in
    let narr = B.fresh m (Jtype.Array int_t) in
    let four = B.fresh m int_t in
    let ten = B.fresh m int_t in
    let twenty = B.fresh m int_t in
    let seven = B.fresh m int_t in
    let one = B.fresh m int_t in
    let a = B.fresh m int_t in
    let v1 = B.fresh m int_t in
    let v2 = B.fresh m int_t in
    let v3 = B.fresh m int_t in
    let acc = B.fresh m int_t in
    B.new_obj b c1 "Chain";
    B.call b ~recv:c1 ~kind:Ir.Special ~cls:"Chain" ~name:ctor_name [];
    B.new_obj b c2 "Chain";
    B.call b ~recv:c2 ~kind:Ir.Special ~cls:"Chain" ~name:ctor_name [];
    B.const_i b ten 10;
    B.const_i b twenty 20;
    B.fstore b ~obj:c1 ~field:"v" ~src:ten;
    B.fstore b ~obj:c2 ~field:"v" ~src:twenty;
    (* A cycle: c1 -> c2 -> c1; the conversion functions must not loop. *)
    B.fstore b ~obj:c1 ~field:"next" ~src:c2;
    B.fstore b ~obj:c2 ~field:"next" ~src:c1;
    B.const_i b four 4;
    B.new_array b arr int_t ~len:four;
    B.const_i b seven 7;
    B.const_i b one 1;
    B.astore b ~arr ~idx:one ~src:seven;
    B.fstore b ~obj:c1 ~field:"nums" ~src:arr;
    (* Across the boundary and back: a deep copy of the cyclic structure. *)
    B.new_obj b bx "Box";
    B.call b ~recv:bx ~kind:Ir.Special ~cls:"Box" ~name:ctor_name [];
    B.fstore b ~obj:bx ~field:"kept" ~src:c1;
    B.fload b ~dst:q ~obj:bx ~field:"kept";
    B.fload b ~dst:q2 ~obj:q ~field:"next";
    B.fload b ~dst:q3 ~obj:q2 ~field:"next";
    B.fload b ~dst:v1 ~obj:q ~field:"v";
    B.fload b ~dst:v2 ~obj:q2 ~field:"v";
    B.fload b ~dst:v3 ~obj:q3 ~field:"v";
    B.fload b ~dst:narr ~obj:q ~field:"nums";
    B.aload b ~dst:a ~arr:narr ~idx:one;
    B.binop b acc Ir.Add v1 v2;
    B.binop b acc Ir.Add acc v3;
    B.binop b acc Ir.Add acc a;
    B.ret b (Some acc);
    B.finish m
  in
  {
    name = "deep_conversion";
    program =
      Program.make ~entry:("Main", "main") [ chain; box; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Chain"; "Main" ];
    expected = Some (Ir.Cint 47);  (* 10 + 20 + 10 (cycle) + 7 *)
  }

(* ---------- pagerank: the paper's GraphChi workload in miniature ---------- *)

let pagerank_sized ~n ~iters =
  let deg = 4 in
  let vertex =
    B.cls "Vertex"
      ~fields:
        [ B.field "rank" double_t; B.field "accum" double_t; B.field "outdeg" int_t ]
      ~methods:[ empty_init () ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:double_t in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("i", int_t); ("j", int_t); ("e", int_t); ("k", int_t); ("dst", int_t);
        ("s", int_t); ("round", int_t); ("cond", int_t); ("one", int_t);
        ("nv", int_t); ("nd", int_t); ("degv", int_t); ("iters", int_t);
        ("lcg_a", int_t); ("lcg_c", int_t); ("lcg_m", int_t); ("d", int_t);
        ("verts", Jtype.Array (Jtype.Ref "Vertex"));
        ("edges", Jtype.Array int_t);
        ("v", Jtype.Ref "Vertex"); ("w", Jtype.Ref "Vertex");
        ("zero_f", double_t); ("inv_n", double_t); ("base", double_t);
        ("damp", double_t); ("share", double_t); ("a", double_t);
        ("r2", double_t); ("sum", double_t);
      ];
    let b0 = B.entry m in
    let b_ic = B.block m in   (* init loop: cond / body / per-vertex edges / next *)
    let b_ib = B.block m in
    let b_ec = B.block m in
    let b_eb = B.block m in
    let b_in = B.block m in
    let b_rc = B.block m in   (* superstep loop *)
    let b_rb = B.block m in
    let b_zc = B.block m in   (* zero the accumulators *)
    let b_zb = B.block m in
    let b_sp = B.block m in   (* scatter rank/outdeg along each edge *)
    let b_sc = B.block m in
    let b_sb = B.block m in
    let b_sec = B.block m in
    let b_seb = B.block m in
    let b_sn = B.block m in
    let b_gp = B.block m in   (* gather: rank = base + damp * accum *)
    let b_gc = B.block m in
    let b_gb = B.block m in
    let b_re = B.block m in
    let b_su = B.block m in   (* checksum: sum of final ranks *)
    let b_suc = B.block m in
    let b_sub = B.block m in
    let b_end = B.block m in
    B.const_i b0 "nv" n;
    B.const_i b0 "degv" deg;
    B.const_i b0 "iters" iters;
    B.const_i b0 "one" 1;
    B.const_i b0 "round" 0;
    B.const_i b0 "s" 1;
    B.const_i b0 "lcg_a" 1103515245;
    B.const_i b0 "lcg_c" 12345;
    B.const_i b0 "lcg_m" 1073741824;
    B.const_f b0 "zero_f" 0.0;
    B.const_f b0 "inv_n" (1.0 /. float_of_int n);
    B.const_f b0 "base" (0.15 /. float_of_int n);
    B.const_f b0 "damp" 0.85;
    B.binop b0 "nd" Ir.Mul "nv" "degv";
    B.new_array b0 "verts" (Jtype.Ref "Vertex") ~len:"nv";
    B.new_array b0 "edges" int_t ~len:"nd";
    B.const_i b0 "i" 0;
    B.jump b0 b_ic;
    (* One vertex per pass, plus its [deg] out-edges from a little LCG
       (kept under 2^30 so products stay exact). *)
    B.binop b_ic "cond" Ir.Lt "i" "nv";
    B.branch b_ic "cond" ~then_:b_ib ~else_:b_rc;
    B.new_obj b_ib "v" "Vertex";
    B.call b_ib ~recv:"v" ~kind:Ir.Special ~cls:"Vertex" ~name:ctor_name [];
    B.fstore b_ib ~obj:"v" ~field:"rank" ~src:"inv_n";
    B.fstore b_ib ~obj:"v" ~field:"accum" ~src:"zero_f";
    B.fstore b_ib ~obj:"v" ~field:"outdeg" ~src:"degv";
    B.astore b_ib ~arr:"verts" ~idx:"i" ~src:"v";
    B.const_i b_ib "e" 0;
    B.jump b_ib b_ec;
    B.binop b_ec "cond" Ir.Lt "e" "degv";
    B.branch b_ec "cond" ~then_:b_eb ~else_:b_in;
    B.binop b_eb "s" Ir.Mul "s" "lcg_a";
    B.binop b_eb "s" Ir.Add "s" "lcg_c";
    B.binop b_eb "s" Ir.Rem "s" "lcg_m";
    B.binop b_eb "dst" Ir.Rem "s" "nv";
    B.binop b_eb "k" Ir.Mul "i" "degv";
    B.binop b_eb "k" Ir.Add "k" "e";
    B.astore b_eb ~arr:"edges" ~idx:"k" ~src:"dst";
    B.binop b_eb "e" Ir.Add "e" "one";
    B.jump b_eb b_ec;
    B.binop b_in "i" Ir.Add "i" "one";
    B.jump b_in b_ic;
    (* Each superstep is one iteration frame, GraphChi-style. *)
    B.binop b_rc "cond" Ir.Lt "round" "iters";
    B.branch b_rc "cond" ~then_:b_rb ~else_:b_su;
    B.iter_start b_rb;
    B.const_i b_rb "j" 0;
    B.jump b_rb b_zc;
    B.binop b_zc "cond" Ir.Lt "j" "nv";
    B.branch b_zc "cond" ~then_:b_zb ~else_:b_sp;
    B.aload b_zb ~dst:"w" ~arr:"verts" ~idx:"j";
    B.fstore b_zb ~obj:"w" ~field:"accum" ~src:"zero_f";
    B.binop b_zb "j" Ir.Add "j" "one";
    B.jump b_zb b_zc;
    B.const_i b_sp "i" 0;
    B.jump b_sp b_sc;
    B.binop b_sc "cond" Ir.Lt "i" "nv";
    B.branch b_sc "cond" ~then_:b_sb ~else_:b_gp;
    B.aload b_sb ~dst:"v" ~arr:"verts" ~idx:"i";
    B.fload b_sb ~dst:"share" ~obj:"v" ~field:"rank";
    B.fload b_sb ~dst:"d" ~obj:"v" ~field:"outdeg";
    B.binop b_sb "share" Ir.Div "share" "d";
    B.const_i b_sb "e" 0;
    B.jump b_sb b_sec;
    B.binop b_sec "cond" Ir.Lt "e" "degv";
    B.branch b_sec "cond" ~then_:b_seb ~else_:b_sn;
    B.binop b_seb "k" Ir.Mul "i" "degv";
    B.binop b_seb "k" Ir.Add "k" "e";
    B.aload b_seb ~dst:"dst" ~arr:"edges" ~idx:"k";
    B.aload b_seb ~dst:"w" ~arr:"verts" ~idx:"dst";
    B.fload b_seb ~dst:"a" ~obj:"w" ~field:"accum";
    B.binop b_seb "a" Ir.Add "a" "share";
    B.fstore b_seb ~obj:"w" ~field:"accum" ~src:"a";
    B.binop b_seb "e" Ir.Add "e" "one";
    B.jump b_seb b_sec;
    B.binop b_sn "i" Ir.Add "i" "one";
    B.jump b_sn b_sc;
    B.const_i b_gp "j" 0;
    B.jump b_gp b_gc;
    B.binop b_gc "cond" Ir.Lt "j" "nv";
    B.branch b_gc "cond" ~then_:b_gb ~else_:b_re;
    B.aload b_gb ~dst:"w" ~arr:"verts" ~idx:"j";
    B.fload b_gb ~dst:"a" ~obj:"w" ~field:"accum";
    B.binop b_gb "r2" Ir.Mul "damp" "a";
    B.binop b_gb "r2" Ir.Add "base" "r2";
    B.fstore b_gb ~obj:"w" ~field:"rank" ~src:"r2";
    B.binop b_gb "j" Ir.Add "j" "one";
    B.jump b_gb b_gc;
    B.iter_end b_re;
    B.binop b_re "round" Ir.Add "round" "one";
    B.jump b_re b_rc;
    B.const_f b_su "sum" 0.0;
    B.const_i b_su "j" 0;
    B.jump b_su b_suc;
    B.binop b_suc "cond" Ir.Lt "j" "nv";
    B.branch b_suc "cond" ~then_:b_sub ~else_:b_end;
    B.aload b_sub ~dst:"w" ~arr:"verts" ~idx:"j";
    B.fload b_sub ~dst:"a" ~obj:"w" ~field:"rank";
    B.binop b_sub "sum" Ir.Add "sum" "a";
    B.binop b_sub "j" Ir.Add "j" "one";
    B.jump b_sub b_suc;
    B.add b_end (Ir.Intrinsic (None, Facade_compiler.Rt_names.print, [ Ir.Var "sum" ]));
    B.ret b_end (Some "sum");
    B.finish m
  in
  {
    name = "pagerank";
    program = Program.make ~entry:("Main", "main") [ vertex; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "Vertex"; "Main" ];
    expected = None;
  }

let pagerank = pagerank_sized ~n:32 ~iters:10

(* ---------- pagerank-par: domain-parallel supersteps ----------

   The multi-threaded shape of the paper's scalability runs: each
   superstep spawns [nw] PrWorker runnables over disjoint vertex ranges;
   every worker scatters into its own private accumulator array, and the
   main thread gathers the per-worker accumulators in a fixed order after
   the join at iteration end. All cross-thread writes are disjoint and
   the reduction order is fixed, so the result is identical whatever the
   worker-pool size — the property the parallel-vs-sequential
   differential suite pins. *)

let pagerank_par_sized ~name ~nv ~degv ~iters ~nw ~io_units =
  let worker =
    let run =
      let m = B.create "run" in
      List.iter
        (fun (v, t) -> B.declare m v t)
        [
          ("i", int_t); ("e", int_t); ("k", int_t); ("dstv", int_t);
          ("cond", int_t); ("one", int_t); ("j", int_t);
          ("from", int_t); ("to_", int_t); ("n", int_t); ("d", int_t);
          ("ranks", Jtype.Array double_t); ("accum", Jtype.Array double_t);
          ("edges", Jtype.Array int_t);
          ("zero_f", double_t); ("share", double_t); ("a", double_t);
        ];
      if io_units > 0 then B.declare m "iou" int_t;
      let b0 = B.entry m in
      (* One simulated device read per worker per superstep: the shard of
         the edge file this worker scans. Charged as [Load] latency; under
         a nonzero [io_scale] the reads overlap across domains. *)
      if io_units > 0 then begin
        B.const_i b0 "iou" io_units;
        B.add b0
          (Ir.Intrinsic (None, Facade_compiler.Rt_names.io_read, [ Ir.Var "iou" ]))
      end;
      let b_zc = B.block m in  (* zero own accumulator *)
      let b_zb = B.block m in
      let b_sp = B.block m in
      let b_sc = B.block m in  (* per-source-vertex loop over [from, to) *)
      let b_sb = B.block m in
      let b_ec = B.block m in  (* per-out-edge loop *)
      let b_eb = B.block m in
      let b_sn = B.block m in
      let b_end = B.block m in
      B.const_i b0 "one" 1;
      B.const_f b0 "zero_f" 0.0;
      B.fload b0 ~dst:"from" ~obj:"this" ~field:"efrom";
      B.fload b0 ~dst:"to_" ~obj:"this" ~field:"eto";
      B.fload b0 ~dst:"n" ~obj:"this" ~field:"nv";
      B.fload b0 ~dst:"d" ~obj:"this" ~field:"degv";
      B.fload b0 ~dst:"ranks" ~obj:"this" ~field:"ranks";
      B.fload b0 ~dst:"accum" ~obj:"this" ~field:"accum";
      B.fload b0 ~dst:"edges" ~obj:"this" ~field:"edges";
      B.const_i b0 "j" 0;
      B.jump b0 b_zc;
      B.binop b_zc "cond" Ir.Lt "j" "n";
      B.branch b_zc "cond" ~then_:b_zb ~else_:b_sp;
      B.astore b_zb ~arr:"accum" ~idx:"j" ~src:"zero_f";
      B.binop b_zb "j" Ir.Add "j" "one";
      B.jump b_zb b_zc;
      B.move b_sp ~dst:"i" ~src:"from";
      B.jump b_sp b_sc;
      B.binop b_sc "cond" Ir.Lt "i" "to_";
      B.branch b_sc "cond" ~then_:b_sb ~else_:b_end;
      B.aload b_sb ~dst:"share" ~arr:"ranks" ~idx:"i";
      B.binop b_sb "share" Ir.Div "share" "d";
      B.const_i b_sb "e" 0;
      B.jump b_sb b_ec;
      B.binop b_ec "cond" Ir.Lt "e" "d";
      B.branch b_ec "cond" ~then_:b_eb ~else_:b_sn;
      B.binop b_eb "k" Ir.Mul "i" "d";
      B.binop b_eb "k" Ir.Add "k" "e";
      B.aload b_eb ~dst:"dstv" ~arr:"edges" ~idx:"k";
      B.aload b_eb ~dst:"a" ~arr:"accum" ~idx:"dstv";
      B.binop b_eb "a" Ir.Add "a" "share";
      B.astore b_eb ~arr:"accum" ~idx:"dstv" ~src:"a";
      B.binop b_eb "e" Ir.Add "e" "one";
      B.jump b_eb b_ec;
      B.binop b_sn "i" Ir.Add "i" "one";
      B.jump b_sn b_sc;
      B.ret b_end None;
      B.finish m
    in
    B.cls "PrWorker"
      ~fields:
        [
          B.field "ranks" (Jtype.Array double_t);
          B.field "accum" (Jtype.Array double_t);
          B.field "edges" (Jtype.Array int_t);
          B.field "efrom" int_t; B.field "eto" int_t;
          B.field "nv" int_t; B.field "degv" int_t;
        ]
      ~methods:[ empty_init (); run ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:double_t in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("i", int_t); ("j", int_t); ("k", int_t); ("w", int_t); ("dstv", int_t);
        ("s", int_t); ("round", int_t); ("cond", int_t); ("one", int_t);
        ("n", int_t); ("nd", int_t); ("d", int_t); ("rounds", int_t);
        ("workers_n", int_t); ("chunk", int_t); ("from", int_t); ("to_", int_t);
        ("lcg_a", int_t); ("lcg_c", int_t); ("lcg_m", int_t);
        ("ranks", Jtype.Array double_t);
        ("edges", Jtype.Array int_t);
        ("acc", Jtype.Array double_t);
        ("workers", Jtype.Array (Jtype.Ref "PrWorker"));
        ("wk", Jtype.Ref "PrWorker");
        ("zero_f", double_t); ("inv_n", double_t); ("base", double_t);
        ("damp", double_t); ("a", double_t); ("x", double_t);
        ("r2", double_t); ("sum", double_t);
      ];
    let b0 = B.entry m in
    let b_irc = B.block m in  (* init ranks: cond / body *)
    let b_irb = B.block m in
    let b_iep = B.block m in  (* init edges via LCG: pre / cond / body *)
    let b_iec = B.block m in
    let b_ieb = B.block m in
    let b_wp = B.block m in   (* build workers: pre / cond / body *)
    let b_wc = B.block m in
    let b_wb = B.block m in
    let b_rc = B.block m in   (* superstep loop: cond / body *)
    let b_rb = B.block m in
    let b_tc = B.block m in   (* spawn one thread per worker: cond / body *)
    let b_tb = B.block m in
    let b_join = B.block m in (* iteration end = join barrier *)
    let b_gc = B.block m in   (* gather per vertex: cond / body *)
    let b_gb = B.block m in
    let b_hc = B.block m in   (* inner fold over workers, fixed order *)
    let b_hb = B.block m in
    let b_gf = B.block m in   (* write back the damped rank *)
    let b_re = B.block m in
    let b_sup = B.block m in  (* checksum: pre / cond / body *)
    let b_suc = B.block m in
    let b_sub = B.block m in
    let b_end = B.block m in
    B.const_i b0 "n" nv;
    B.const_i b0 "d" degv;
    B.const_i b0 "rounds" iters;
    B.const_i b0 "workers_n" nw;
    B.const_i b0 "one" 1;
    B.const_i b0 "round" 0;
    B.const_i b0 "s" 1;
    B.const_i b0 "lcg_a" 1103515245;
    B.const_i b0 "lcg_c" 12345;
    B.const_i b0 "lcg_m" 1073741824;
    B.const_f b0 "zero_f" 0.0;
    B.const_f b0 "inv_n" (1.0 /. float_of_int nv);
    B.const_f b0 "base" (0.15 /. float_of_int nv);
    B.const_f b0 "damp" 0.85;
    B.binop b0 "nd" Ir.Mul "n" "d";
    B.binop b0 "chunk" Ir.Div "n" "workers_n";
    B.new_array b0 "ranks" double_t ~len:"n";
    B.new_array b0 "edges" int_t ~len:"nd";
    B.new_array b0 "workers" (Jtype.Ref "PrWorker") ~len:"workers_n";
    B.const_i b0 "i" 0;
    B.jump b0 b_irc;
    B.binop b_irc "cond" Ir.Lt "i" "n";
    B.branch b_irc "cond" ~then_:b_irb ~else_:b_iep;
    B.astore b_irb ~arr:"ranks" ~idx:"i" ~src:"inv_n";
    B.binop b_irb "i" Ir.Add "i" "one";
    B.jump b_irb b_irc;
    B.const_i b_iep "k" 0;
    B.jump b_iep b_iec;
    B.binop b_iec "cond" Ir.Lt "k" "nd";
    B.branch b_iec "cond" ~then_:b_ieb ~else_:b_wp;
    B.binop b_ieb "s" Ir.Mul "s" "lcg_a";
    B.binop b_ieb "s" Ir.Add "s" "lcg_c";
    B.binop b_ieb "s" Ir.Rem "s" "lcg_m";
    B.binop b_ieb "dstv" Ir.Rem "s" "n";
    B.astore b_ieb ~arr:"edges" ~idx:"k" ~src:"dstv";
    B.binop b_ieb "k" Ir.Add "k" "one";
    B.jump b_ieb b_iec;
    B.const_i b_wp "w" 0;
    B.jump b_wp b_wc;
    B.binop b_wc "cond" Ir.Lt "w" "workers_n";
    B.branch b_wc "cond" ~then_:b_wb ~else_:b_rc;
    B.new_obj b_wb "wk" "PrWorker";
    B.call b_wb ~recv:"wk" ~kind:Ir.Special ~cls:"PrWorker" ~name:ctor_name [];
    B.new_array b_wb "acc" double_t ~len:"n";
    B.binop b_wb "from" Ir.Mul "w" "chunk";
    B.binop b_wb "to_" Ir.Add "from" "chunk";
    B.fstore b_wb ~obj:"wk" ~field:"ranks" ~src:"ranks";
    B.fstore b_wb ~obj:"wk" ~field:"accum" ~src:"acc";
    B.fstore b_wb ~obj:"wk" ~field:"edges" ~src:"edges";
    B.fstore b_wb ~obj:"wk" ~field:"efrom" ~src:"from";
    B.fstore b_wb ~obj:"wk" ~field:"eto" ~src:"to_";
    B.fstore b_wb ~obj:"wk" ~field:"nv" ~src:"n";
    B.fstore b_wb ~obj:"wk" ~field:"degv" ~src:"d";
    B.astore b_wb ~arr:"workers" ~idx:"w" ~src:"wk";
    B.binop b_wb "w" Ir.Add "w" "one";
    B.jump b_wb b_wc;
    (* One superstep = one iteration frame; threads spawned inside it are
       joined at its end. *)
    B.binop b_rc "cond" Ir.Lt "round" "rounds";
    B.branch b_rc "cond" ~then_:b_rb ~else_:b_sup;
    B.iter_start b_rb;
    B.const_i b_rb "w" 0;
    B.jump b_rb b_tc;
    B.binop b_tc "cond" Ir.Lt "w" "workers_n";
    B.branch b_tc "cond" ~then_:b_tb ~else_:b_join;
    B.aload b_tb ~dst:"wk" ~arr:"workers" ~idx:"w";
    B.add b_tb (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var "wk" ]));
    B.binop b_tb "w" Ir.Add "w" "one";
    B.jump b_tb b_tc;
    B.iter_end b_join;
    B.const_i b_join "j" 0;
    B.jump b_join b_gc;
    B.binop b_gc "cond" Ir.Lt "j" "n";
    B.branch b_gc "cond" ~then_:b_gb ~else_:b_re;
    B.const_f b_gb "a" 0.0;
    B.const_i b_gb "w" 0;
    B.jump b_gb b_hc;
    B.binop b_hc "cond" Ir.Lt "w" "workers_n";
    B.branch b_hc "cond" ~then_:b_hb ~else_:b_gf;
    B.aload b_hb ~dst:"wk" ~arr:"workers" ~idx:"w";
    B.fload b_hb ~dst:"acc" ~obj:"wk" ~field:"accum";
    B.aload b_hb ~dst:"x" ~arr:"acc" ~idx:"j";
    B.binop b_hb "a" Ir.Add "a" "x";
    B.binop b_hb "w" Ir.Add "w" "one";
    B.jump b_hb b_hc;
    B.binop b_gf "r2" Ir.Mul "damp" "a";
    B.binop b_gf "r2" Ir.Add "base" "r2";
    B.astore b_gf ~arr:"ranks" ~idx:"j" ~src:"r2";
    B.binop b_gf "j" Ir.Add "j" "one";
    B.jump b_gf b_gc;
    B.binop b_re "round" Ir.Add "round" "one";
    B.jump b_re b_rc;
    B.const_f b_sup "sum" 0.0;
    B.const_i b_sup "j" 0;
    B.jump b_sup b_suc;
    B.binop b_suc "cond" Ir.Lt "j" "n";
    B.branch b_suc "cond" ~then_:b_sub ~else_:b_end;
    B.aload b_sub ~dst:"x" ~arr:"ranks" ~idx:"j";
    B.binop b_sub "sum" Ir.Add "sum" "x";
    B.binop b_sub "j" Ir.Add "j" "one";
    B.jump b_sub b_suc;
    B.add b_end (Ir.Intrinsic (None, Facade_compiler.Rt_names.print, [ Ir.Var "sum" ]));
    B.ret b_end (Some "sum");
    B.finish m
  in
  {
    name;
    program =
      Program.make ~entry:("Main", "main") [ worker; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "PrWorker"; "Main" ];
    expected = None;
  }

let pagerank_par =
  pagerank_par_sized ~name:"pagerank-par" ~nv:32 ~degv:4 ~iters:6 ~nw:4
    ~io_units:0

let pagerank_par_large =
  pagerank_par_sized ~name:"pagerank-par-large" ~nv:256 ~degv:8 ~iters:6 ~nw:8
    ~io_units:20_000

(* ---------- scaled locking: the lock pool under domain parallelism ----- *)

(* [nw] workers, each doing [rounds] rounds of: take the shared counter's
   monitor, then (nested, so two pool entries are simultaneously in use)
   the worker's own counter's monitor, and bump both. The own lock is only
   ever taken while holding the shared one, so peak pool occupancy is
   exactly 2 at any worker count; the shared counter is protected by its
   monitor, so the final total is deterministic: [2 * nw * rounds]. With
   [io_units > 0] each worker opens with one [sys.io_read io_units] — the
   simulated fetch of its work quantum — so the workload scales with
   domains under a nonzero [io_scale] even on a single-core host. *)
let locking_sized ~name ~nw ~rounds ~io_units =
  let counter =
    B.cls "LkCell" ~fields:[ B.field "count" int_t ] ~methods:[ empty_init () ]
  in
  let worker =
    let run =
      let m = B.create "run" in
      List.iter
        (fun (v, t) -> B.declare m v t)
        [
          ("i", int_t); ("one", int_t); ("limit", int_t); ("cond", int_t);
          ("c", int_t); ("c2", int_t);
          ("sh", Jtype.Ref "LkCell"); ("own", Jtype.Ref "LkCell");
        ];
      if io_units > 0 then B.declare m "iou" int_t;
      let b0 = B.entry m in
      let b_cond = B.block m in
      let b_body = B.block m in
      let b_end = B.block m in
      if io_units > 0 then begin
        B.const_i b0 "iou" io_units;
        B.add b0
          (Ir.Intrinsic (None, Facade_compiler.Rt_names.io_read, [ Ir.Var "iou" ]))
      end;
      B.const_i b0 "i" 0;
      B.const_i b0 "one" 1;
      B.const_i b0 "limit" rounds;
      B.fload b0 ~dst:"sh" ~obj:"this" ~field:"shared";
      B.fload b0 ~dst:"own" ~obj:"this" ~field:"own";
      B.jump b0 b_cond;
      B.binop b_cond "cond" Ir.Lt "i" "limit";
      B.branch b_cond "cond" ~then_:b_body ~else_:b_end;
      B.monitor_enter b_body "sh";
      B.fload b_body ~dst:"c" ~obj:"sh" ~field:"count";
      B.binop b_body "c2" Ir.Add "c" "one";
      B.fstore b_body ~obj:"sh" ~field:"count" ~src:"c2";
      B.monitor_enter b_body "own";  (* nested: two locks in use *)
      B.fload b_body ~dst:"c" ~obj:"own" ~field:"count";
      B.binop b_body "c2" Ir.Add "c" "one";
      B.fstore b_body ~obj:"own" ~field:"count" ~src:"c2";
      B.monitor_exit b_body "own";
      B.monitor_exit b_body "sh";
      B.binop b_body "i" Ir.Add "i" "one";
      B.jump b_body b_cond;
      B.ret b_end None;
      B.finish m
    in
    B.cls "LkWorker"
      ~fields:
        [ B.field "shared" (Jtype.Ref "LkCell"); B.field "own" (Jtype.Ref "LkCell") ]
      ~methods:[ empty_init (); run ]
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    List.iter
      (fun (v, t) -> B.declare m v t)
      [
        ("w", int_t); ("one", int_t); ("workers_n", int_t); ("cond", int_t);
        ("total", int_t); ("v", int_t);
        ("sh", Jtype.Ref "LkCell"); ("oc", Jtype.Ref "LkCell");
        ("wk", Jtype.Ref "LkWorker");
        ("workers", Jtype.Array (Jtype.Ref "LkWorker"));
      ];
    let b0 = B.entry m in
    let b_wc = B.block m in   (* build workers *)
    let b_wb = B.block m in
    let b_run = B.block m in  (* spawn inside one iteration frame *)
    let b_tc = B.block m in
    let b_tb = B.block m in
    let b_join = B.block m in
    let b_gc = B.block m in   (* gather own counters *)
    let b_gb = B.block m in
    let b_end = B.block m in
    B.const_i b0 "one" 1;
    B.const_i b0 "workers_n" nw;
    B.new_obj b0 "sh" "LkCell";
    B.call b0 ~recv:"sh" ~kind:Ir.Special ~cls:"LkCell" ~name:ctor_name [];
    B.new_array b0 "workers" (Jtype.Ref "LkWorker") ~len:"workers_n";
    B.const_i b0 "w" 0;
    B.jump b0 b_wc;
    B.binop b_wc "cond" Ir.Lt "w" "workers_n";
    B.branch b_wc "cond" ~then_:b_wb ~else_:b_run;
    B.new_obj b_wb "wk" "LkWorker";
    B.call b_wb ~recv:"wk" ~kind:Ir.Special ~cls:"LkWorker" ~name:ctor_name [];
    B.new_obj b_wb "oc" "LkCell";
    B.call b_wb ~recv:"oc" ~kind:Ir.Special ~cls:"LkCell" ~name:ctor_name [];
    B.fstore b_wb ~obj:"wk" ~field:"shared" ~src:"sh";
    B.fstore b_wb ~obj:"wk" ~field:"own" ~src:"oc";
    B.astore b_wb ~arr:"workers" ~idx:"w" ~src:"wk";
    B.binop b_wb "w" Ir.Add "w" "one";
    B.jump b_wb b_wc;
    B.iter_start b_run;
    B.const_i b_run "w" 0;
    B.jump b_run b_tc;
    B.binop b_tc "cond" Ir.Lt "w" "workers_n";
    B.branch b_tc "cond" ~then_:b_tb ~else_:b_join;
    B.aload b_tb ~dst:"wk" ~arr:"workers" ~idx:"w";
    B.add b_tb (Ir.Intrinsic (None, Facade_compiler.Rt_names.run_thread, [ Ir.Var "wk" ]));
    B.binop b_tb "w" Ir.Add "w" "one";
    B.jump b_tb b_tc;
    B.iter_end b_join;
    B.fload b_join ~dst:"total" ~obj:"sh" ~field:"count";
    B.const_i b_join "w" 0;
    B.jump b_join b_gc;
    B.binop b_gc "cond" Ir.Lt "w" "workers_n";
    B.branch b_gc "cond" ~then_:b_gb ~else_:b_end;
    B.aload b_gb ~dst:"wk" ~arr:"workers" ~idx:"w";
    B.fload b_gb ~dst:"oc" ~obj:"wk" ~field:"own";
    B.fload b_gb ~dst:"v" ~obj:"oc" ~field:"count";
    B.binop b_gb "total" Ir.Add "total" "v";
    B.binop b_gb "w" Ir.Add "w" "one";
    B.jump b_gb b_gc;
    B.ret b_end (Some "total");
    B.finish m
  in
  {
    name;
    program =
      Program.make ~entry:("Main", "main")
        [ counter; worker; B.cls "Main" ~methods:[ main ] ];
    spec = spec [ "LkCell"; "LkWorker"; "Main" ];
    expected = Some (Ir.Cint (2 * nw * rounds));
  }

let locking_large =
  locking_sized ~name:"locking-large" ~nw:8 ~rounds:400 ~io_units:10_000

let all =
  [
    fig2;
    linked_list;
    dispatch;
    prim_arrays;
    conversion;
    locking;
    iteration;
    statics;
    strings;
    interfaces;
    nested_iteration;
    collections;
    threads;
    boundary;
    deep_conversion;
    pagerank;
    pagerank_par;
    pagerank_par_large;
    locking_large;
  ]

(* ---------- synthetic programs for transformation-speed benches ---------- *)

let synthetic ~classes ~methods_per_class =
  let cname i = Printf.sprintf "Data%03d" i in
  let mk_class i =
    let methods =
      List.init methods_per_class (fun k ->
          let m =
            B.create (Printf.sprintf "m%d" k)
              ~params:[ ("x", Jtype.Ref (cname i)) ]
              ~ret:int_t
          in
          let b = B.entry m in
          let v = B.fresh m int_t in
          let w = B.fresh m int_t in
          let s = B.fresh m int_t in
          B.fload b ~dst:v ~obj:"this" ~field:"a";
          B.fload b ~dst:w ~obj:"x" ~field:"a";
          B.binop b s Ir.Add v w;
          B.fstore b ~obj:"this" ~field:"a" ~src:s;
          (if k + 1 < methods_per_class then begin
             let r = B.fresh m int_t in
             B.call b ~ret:r ~recv:"x" ~kind:Ir.Virtual ~cls:(cname i)
               ~name:(Printf.sprintf "m%d" (k + 1))
               [ "x" ];
             B.binop b s Ir.Add s r
           end);
          B.ret b (Some s);
          B.finish m)
    in
    B.cls (cname i)
      ~fields:[ B.field "a" int_t; B.field "peer" (Jtype.Ref (cname ((i + 1) mod classes))) ]
      ~methods:(empty_init () :: methods)
  in
  let main =
    let m = B.create ~static:true "main" ~ret:int_t in
    let b = B.entry m in
    let z = B.fresh m int_t in
    B.const_i b z 0;
    B.ret b (Some z);
    B.finish m
  in
  let classes_l = List.init classes mk_class @ [ B.cls "Main" ~methods:[ main ] ] in
  let program = Program.make ~entry:("Main", "main") classes_l in
  (program, spec (List.init classes cname @ [ "Main" ]))
