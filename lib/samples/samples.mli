(** Ready-made jir programs used by tests, examples, and benchmarks.

    Each value is a pair: the program and the data-class specification a
    user of FACADE would provide for it. All programs are verified
    well-formed and runnable in both object and facade mode. *)

type sample = {
  name : string;
  program : Jir.Program.t;
  spec : Facade_compiler.Classify.spec;
  expected : Jir.Ir.const option;  (** entry's expected return, if constant *)
}

val fig2 : sample
(** The paper's Figure 2: [Professor]/[Student] with [addStudent] and a
    client building the structure. Returns the professor's student count. *)

val linked_list : sample
(** Builds an N-node list of data records in a loop, then sums the payloads
    walking [next] references: exercises field loads/stores, null tests,
    loops. *)

val dispatch : sample
(** A [Shape] hierarchy with overridden [area]: exercises virtual calls via
    [resolve], [instanceof], and casts on data records. *)

val prim_arrays : sample
(** Fills and folds int/double arrays, uses [arraycopy] and array length:
    exercises paged array records. *)

val conversion : sample
(** A data record flows into a control-path class and back: exercises the
    synthesized conversion functions at interaction points (cases 3.3/4.3/
    6.3). *)

val locking : sample
(** Nested [synchronized] blocks on data records: exercises the shared lock
    pool with reentrancy. *)

val iteration : sample
(** Allocates records inside iteration marks over several rounds: in P′
    the pages must be recycled at every [Iter_end]. *)

val statics : sample
(** Static fields on a data class, including a data-typed static. *)

val strings : sample
(** String literals flowing through data fields; literal interning makes
    [==] hold in both modes. *)

val interfaces : sample
(** A [Measurable] interface implemented by two data classes, dispatched
    through the interface type: exercises IFacade generation (§3.2) and
    interface-typed page references. *)

val nested_iteration : sample
(** Nested iteration frames (sub-iterations, §3.6): inner frames recycle
    their pages while records of the enclosing frame stay live. *)

val collections : sample
(** Type-specialized JDK-style collections as data classes (§3.1 treats a
    collection in the data path as a data type; §3.6 transforms the JDK's
    collection classes): a growable [ArrayList_Item] (doubling via the
    modelled [System.arraycopy]) and an open-addressing [IntHashMap_Item]
    with rehashing, filled and read back in both modes. *)

val array_list : elem:string -> Jir.Ir.cls
(** The generated, element-specialized growable list class. *)

val array_list_name : elem:string -> string

val int_hash_map : elem:string -> Jir.Ir.cls
(** The generated open-addressing int-keyed map class. *)

val int_hash_map_name : elem:string -> string

val threads : sample
(** Two worker threads and the main thread increment a shared record under
    its intrinsic lock: exercises per-thread facade pools and page
    managers plus the shared lock pool (§3.4). *)

val racy_counter : sample
(** The seeded racy twin of {!threads}: identical spawn/join structure but
    the shared counter is incremented without its monitor. The static race
    detector must flag it; deliberately not in {!all} (running it with
    workers would be a real race). *)

val boundary : sample
(** A boundary class with an annotated data field (the paper's GraphChi
    workflow, §4.1): the class stays on the heap, the field becomes a page
    reference. *)

val deep_conversion : sample
(** A cyclic, array-carrying data structure crossing the control/data
    boundary in both directions: the synthesized conversion functions must
    deep-copy recursively without looping on the cycle (§3.5). *)

val pagerank : sample
(** The paper's GraphChi PageRank workload (§4.1) in miniature: a [Vertex]
    data class, a [Vertex[]] graph with LCG-generated edges, and supersteps
    wrapped in iteration marks. Prints and returns the rank checksum; the
    VM benchmark's object-mode workload. *)

val pagerank_sized : n:int -> iters:int -> sample
(** [pagerank] with a chosen vertex count and superstep count. *)

val pagerank_par : sample
(** Domain-parallel PageRank: each superstep spawns one [run_thread]
    per [PrWorker], each scattering a disjoint source-vertex range into
    a private accumulator array; after the iteration-end join the main
    thread gathers the accumulators in fixed worker order. The result is
    bit-identical at any worker-pool size — the parallel-vs-sequential
    differential suite's showcase workload. *)

val pagerank_par_sized :
  name:string ->
  nv:int -> degv:int -> iters:int -> nw:int -> io_units:int -> sample
(** {!pagerank_par} with chosen vertex count, out-degree, superstep count
    and worker count. With [io_units > 0] each worker opens its superstep
    with one [sys.io_read io_units] (microseconds) — the simulated scan of
    its edge-file shard — so a nonzero VM [io_scale] turns the workload
    I/O-bound and its supersteps overlap across domains. *)

val pagerank_par_large : sample
(** The scalability workload: 256 vertices, degree 8, 6 supersteps,
    8 workers, 20ms of simulated read per worker per superstep. With
    [io_scale 1.0] a sequential run sleeps ~960ms while an 8-domain run
    overlaps the reads down to ~120ms — the benchmark's ≥4x curve. *)

val locking_sized :
  name:string -> nw:int -> rounds:int -> io_units:int -> sample
(** [nw] spawned workers each run [rounds] rounds of: take the shared
    counter's monitor, then (nested) their own counter's monitor, bump
    both. Peak lock-pool occupancy is exactly 2 at any worker count and
    the deterministic total is [2 * nw * rounds]. With [io_units > 0]
    each worker opens with one [sys.io_read io_units] microseconds of
    simulated device read. *)

val locking_large : sample
(** {!locking_sized} at 8 workers x 400 rounds with a 10ms simulated read
    per worker — the lock pool under contention from every pool domain
    (6400 enter/exit pairs), still I/O-overlappable for the bench. *)

val all : sample list
(** Every sample above — the equivalence test sweep. *)

val synthetic : classes:int -> methods_per_class:int -> Jir.Program.t * Facade_compiler.Classify.spec
(** A generated program of data classes with field-heavy methods, used to
    measure transformation speed (paper §4: 752–1102 instructions/s). *)
