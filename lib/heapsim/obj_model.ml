let object_header_bytes = 12
let array_header_bytes = 16
let reference_bytes = 4
let page_wrapper_bytes = 48

let align n = (n + 7) land lnot 7

let object_bytes ~field_bytes = align (object_header_bytes + field_bytes)

let array_bytes ~elem_bytes ~length = align (array_header_bytes + (elem_bytes * length))
