type lifetime = Temp | Iteration | Control | Permanent

exception Out_of_memory of { at_seconds : float; live_bytes : int }

type seg = { mutable objs : int; mutable bytes : int }

let seg () = { objs = 0; bytes = 0 }

let seg_add s ~objs ~bytes =
  s.objs <- s.objs + objs;
  s.bytes <- s.bytes + bytes

let seg_clear s =
  s.objs <- 0;
  s.bytes <- 0

(* A population (control objects, permanent objects, or one iteration frame)
   split between the nursery and the old generation. *)
type pop = { young : seg; old : seg }

let pop () = { young = seg (); old = seg () }

type t = {
  cfg : Hconfig.t;
  clk : Sim_clock.t;
  stats : Gc_stats.t;
  temp : seg;          (* nursery garbage-to-be: dead at the next minor GC *)
  control : pop;
  permanent : pop;
  mutable frames : pop list;  (* innermost iteration first *)
  dead_old : seg;      (* old-generation garbage awaiting a major GC *)
  mutable young_used : int;
  mutable native : int;
  mutable peak : int;
}

let create ?clock cfg =
  let clk = match clock with Some c -> c | None -> Sim_clock.create () in
  {
    cfg;
    clk;
    stats = Gc_stats.create ();
    temp = seg ();
    control = pop ();
    permanent = pop ();
    frames = [];
    dead_old = seg ();
    young_used = 0;
    native = 0;
    peak = 0;
  }

let clock t = t.clk
let config t = t.cfg
let stats t = t.stats

let pops t = t.control :: t.permanent :: t.frames

let live_objects t =
  List.fold_left (fun acc p -> acc + p.young.objs + p.old.objs) 0 (pops t)

let live_bytes t =
  List.fold_left (fun acc p -> acc + p.young.bytes + p.old.bytes) 0 (pops t)

let old_used t =
  t.dead_old.bytes
  + List.fold_left (fun acc p -> acc + p.old.bytes) 0 (pops t)

let old_capacity t = t.cfg.Hconfig.heap_bytes - t.cfg.Hconfig.young_bytes

let heap_used_bytes t = t.young_used + old_used t

let native_bytes t = t.native

let peak_memory_bytes t = t.peak

let note_peak t =
  let used = heap_used_bytes t + t.native in
  if used > t.peak then t.peak <- used

(* The combined "gc_pause" histogram accumulates here, in occurrence
   order — on a single lane its sum is bit-exact against
   [Gc_stats.gc_seconds], which the golden-trace tests rely on. *)
let charge_gc t kind s =
  Sim_clock.charge t.clk Sim_clock.Gc s;
  t.stats.Gc_stats.gc_seconds <- t.stats.Gc_stats.gc_seconds +. s;
  if Obs.Trace.on () then begin
    Obs.Trace.histogram ~name:"gc_pause" s;
    Obs.Trace.histogram ~name:("gc_pause_" ^ kind) s
  end

let oom t =
  raise (Out_of_memory { at_seconds = Sim_clock.total t.clk; live_bytes = live_bytes t })

(* Mark-sweep-compact over the old generation: cost follows the live set. *)
let major_gc t =
  let trace = Obs.Trace.on () in
  if trace then Obs.Trace.span_begin ~sim:(Sim_clock.total t.clk) ~cat:"gc" "major_gc";
  let c = t.cfg.Hconfig.costs in
  let live_objs = ref 0 and live_b = ref 0 in
  List.iter
    (fun p ->
      live_objs := !live_objs + p.old.objs;
      live_b := !live_b + p.old.bytes)
    (pops t);
  charge_gc t "major"
    (c.Hconfig.major_fixed
    +. (c.Hconfig.major_per_obj *. float_of_int !live_objs)
    +. (c.Hconfig.major_per_byte *. float_of_int !live_b));
  t.stats.Gc_stats.major_gcs <- t.stats.Gc_stats.major_gcs + 1;
  t.stats.Gc_stats.objects_traced <- t.stats.Gc_stats.objects_traced + !live_objs;
  seg_clear t.dead_old;
  if trace then
    Obs.Trace.span_end ~sim:(Sim_clock.total t.clk)
      ~args:
        [
          ("live_objects", Obs.Tracer.Aint !live_objs);
          ("live_bytes", Obs.Tracer.Aint !live_b);
        ]
      ()

(* Copying scavenge: survivors are traced, copied, and promoted. *)
let minor_gc t =
  let trace = Obs.Trace.on () in
  if trace then Obs.Trace.span_begin ~sim:(Sim_clock.total t.clk) ~cat:"gc" "minor_gc";
  let c = t.cfg.Hconfig.costs in
  let surv_objs = ref 0 and surv_b = ref 0 in
  List.iter
    (fun p ->
      surv_objs := !surv_objs + p.young.objs;
      surv_b := !surv_b + p.young.bytes)
    (pops t);
  charge_gc t "minor"
    (c.Hconfig.minor_fixed
    +. (c.Hconfig.minor_per_obj *. float_of_int !surv_objs)
    +. (c.Hconfig.minor_per_byte *. float_of_int !surv_b));
  t.stats.Gc_stats.minor_gcs <- t.stats.Gc_stats.minor_gcs + 1;
  t.stats.Gc_stats.objects_traced <- t.stats.Gc_stats.objects_traced + !surv_objs;
  t.stats.Gc_stats.bytes_copied <- t.stats.Gc_stats.bytes_copied + !surv_b;
  List.iter
    (fun p ->
      seg_add p.old ~objs:p.young.objs ~bytes:p.young.bytes;
      seg_clear p.young)
    (pops t);
  seg_clear t.temp;
  t.young_used <- 0;
  (* End the scavenge span before the promotion-pressure check so a
     triggered major collection shows up as a sibling, not a child. *)
  if trace then
    Obs.Trace.span_end ~sim:(Sim_clock.total t.clk)
      ~args:
        [
          ("survivors", Obs.Tracer.Aint !surv_objs);
          ("copied_bytes", Obs.Tracer.Aint !surv_b);
        ]
      ();
  if old_used t > old_capacity t then begin
    major_gc t;
    if old_used t > old_capacity t then oom t
  end

let ensure_old_space t bytes =
  if old_used t + bytes > old_capacity t then begin
    major_gc t;
    if old_used t + bytes > old_capacity t then oom t
  end

let current_pop t lifetime =
  match lifetime with
  | Control -> Some t.control
  | Permanent -> Some t.permanent
  | Iteration -> (
      (* Outside any iteration, data allocated "before any iteration starts"
         behaves like the paper's default page manager: it lives until the
         thread terminates, i.e. permanently for our purposes. *)
      match t.frames with [] -> Some t.permanent | f :: _ -> Some f)
  | Temp -> None

let record_alloc t ~count ~bytes_total =
  t.stats.Gc_stats.objects_allocated <- t.stats.Gc_stats.objects_allocated + count;
  t.stats.Gc_stats.bytes_allocated <- t.stats.Gc_stats.bytes_allocated + bytes_total

let alloc_large t ~lifetime ~bytes =
  ensure_old_space t bytes;
  (match current_pop t lifetime with
  | Some p -> seg_add p.old ~objs:1 ~bytes
  | None -> seg_add t.dead_old ~objs:1 ~bytes);
  record_alloc t ~count:1 ~bytes_total:bytes;
  note_peak t

let alloc_young t ~lifetime ~count ~bytes_each =
  (match current_pop t lifetime with
  | Some p -> seg_add p.young ~objs:count ~bytes:(count * bytes_each)
  | None -> seg_add t.temp ~objs:count ~bytes:(count * bytes_each));
  t.young_used <- t.young_used + (count * bytes_each);
  record_alloc t ~count ~bytes_total:(count * bytes_each);
  note_peak t

let alloc t ~lifetime ~bytes =
  if bytes < 0 then invalid_arg "Heap.alloc: negative size";
  if bytes > t.cfg.Hconfig.young_bytes / 2 then alloc_large t ~lifetime ~bytes
  else begin
    if t.young_used + bytes > t.cfg.Hconfig.young_bytes then minor_gc t;
    alloc_young t ~lifetime ~count:1 ~bytes_each:bytes
  end

let alloc_many t ~lifetime ~bytes_each ~count =
  if bytes_each < 0 || count < 0 then invalid_arg "Heap.alloc_many: negative argument";
  if bytes_each > t.cfg.Hconfig.young_bytes / 2 then
    for _ = 1 to count do
      alloc_large t ~lifetime ~bytes:bytes_each
    done
  else begin
    let remaining = ref count in
    while !remaining > 0 do
      let room = t.cfg.Hconfig.young_bytes - t.young_used in
      let fit = if bytes_each = 0 then !remaining else room / bytes_each in
      if fit <= 0 then minor_gc t
      else begin
        let n = min !remaining fit in
        alloc_young t ~lifetime ~count:n ~bytes_each;
        remaining := !remaining - n
      end
    done
  end

let free_control t ~bytes ~count =
  let take seg n b =
    if seg.objs < n || seg.bytes < b then (0, 0)
    else begin
      seg.objs <- seg.objs - n;
      seg.bytes <- seg.bytes - b;
      (n, b)
    end
  in
  (* Prefer the old generation: control objects being freed have typically
     survived at least one scavenge. *)
  let n, b = take t.control.old count bytes in
  if n > 0 then seg_add t.dead_old ~objs:n ~bytes:b
  else begin
    let n, b = take t.control.young count bytes in
    if n > 0 then seg_add t.temp ~objs:n ~bytes:b
    else invalid_arg "Heap.free_control: freeing more than is live"
  end

let native_alloc t ~bytes =
  if bytes < 0 then invalid_arg "Heap.native_alloc: negative size";
  t.native <- t.native + bytes;
  note_peak t

let native_free t ~bytes =
  if bytes < 0 || bytes > t.native then invalid_arg "Heap.native_free: bad size";
  t.native <- t.native - bytes

let iteration_start t = t.frames <- pop () :: t.frames

let iteration_end t =
  match t.frames with
  | [] -> invalid_arg "Heap.iteration_end: no iteration open"
  | f :: rest ->
      t.frames <- rest;
      (* The frame's young objects die in the nursery; its promoted objects
         become old-generation garbage until the next major collection. *)
      seg_add t.temp ~objs:f.young.objs ~bytes:f.young.bytes;
      seg_add t.dead_old ~objs:f.old.objs ~bytes:f.old.bytes

let iteration_depth t = List.length t.frames

let force_major_gc t =
  minor_gc t;
  major_gc t

(* Aliases for use inside [Shard], whose own field/function names would
   otherwise shadow them. *)
let heap_alloc_many = alloc_many
let heap_native_alloc = native_alloc
let heap_native_free = native_free

module Shard = struct
  (* One accumulation bucket per distinct (lifetime, bytes_each) pair.
     First-seen order is preserved so a flush replays allocations in a
     deterministic order regardless of hash-table iteration. *)
  type bucket = {
    b_lifetime : lifetime;
    b_bytes : int;
    mutable b_count : int;
  }

  type shard = {
    tbl : (lifetime * int, bucket) Hashtbl.t;
    mutable order : bucket list;  (* reverse first-seen order *)
    mutable s_native : int;       (* net native delta; may be negative *)
    mutable io_seconds : float;   (* simulated I/O wait to charge at flush *)
  }

  type t = shard

  let create () =
    { tbl = Hashtbl.create 16; order = []; s_native = 0; io_seconds = 0.0 }

  let is_empty s =
    Hashtbl.length s.tbl = 0 && s.s_native = 0 && s.io_seconds = 0.0

  let pending s =
    Hashtbl.fold
      (fun _ b (objs, bytes) -> (objs + b.b_count, bytes + (b.b_count * b.b_bytes)))
      s.tbl (0, 0)

  let bucket s ~lifetime ~bytes =
    match Hashtbl.find_opt s.tbl (lifetime, bytes) with
    | Some b -> b
    | None ->
        let b = { b_lifetime = lifetime; b_bytes = bytes; b_count = 0 } in
        Hashtbl.add s.tbl (lifetime, bytes) b;
        s.order <- b :: s.order;
        b

  let alloc s ~lifetime ~bytes =
    if bytes < 0 then invalid_arg "Heap.Shard.alloc: negative size";
    let b = bucket s ~lifetime ~bytes in
    b.b_count <- b.b_count + 1

  let alloc_many s ~lifetime ~bytes_each ~count =
    if bytes_each < 0 || count < 0 then
      invalid_arg "Heap.Shard.alloc_many: negative argument";
    let b = bucket s ~lifetime ~bytes:bytes_each in
    b.b_count <- b.b_count + count

  let native_alloc s ~bytes =
    if bytes < 0 then invalid_arg "Heap.Shard.native_alloc: negative size";
    s.s_native <- s.s_native + bytes

  let native_free s ~bytes =
    if bytes < 0 then invalid_arg "Heap.Shard.native_free: negative size";
    s.s_native <- s.s_native - bytes

  let charge_io s ~seconds =
    if seconds > 0.0 then s.io_seconds <- s.io_seconds +. seconds

  let clear s =
    Hashtbl.reset s.tbl;
    s.order <- [];
    s.s_native <- 0;
    s.io_seconds <- 0.0

  (* Fold [src] into [dst] without touching any heap: used when a parent
     absorbs a joined child's unflushed charges, mirroring
     [Exec_stats.merge]. *)
  let merge ~dst ~src =
    List.iter
      (fun b ->
        if b.b_count > 0 then
          let d = bucket dst ~lifetime:b.b_lifetime ~bytes:b.b_bytes in
          d.b_count <- d.b_count + b.b_count)
      (List.rev src.order);
    dst.s_native <- dst.s_native + src.s_native;
    dst.io_seconds <- dst.io_seconds +. src.io_seconds;
    clear src

  (* Replay the accumulated charges into [h]. Additive totals
     (objects/bytes allocated, native bytes, live populations) come out
     identical to per-object charging; GC trigger points may differ, which
     is the documented "approximate under parallelism" contract. *)
  let flush h s =
    List.iter
      (fun b ->
        if b.b_count > 0 then
          heap_alloc_many h ~lifetime:b.b_lifetime ~bytes_each:b.b_bytes
            ~count:b.b_count)
      (List.rev s.order);
    if s.s_native > 0 then heap_native_alloc h ~bytes:s.s_native
    else if s.s_native < 0 then heap_native_free h ~bytes:(-s.s_native);
    if s.io_seconds > 0.0 then
      Sim_clock.charge h.clk Sim_clock.Load s.io_seconds;
    clear s
end
