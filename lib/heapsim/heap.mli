(** Simulated managed heap with a parallel-generational collector.

    The simulator tracks aggregate live/dead object populations (not
    individual objects), segregated by lifetime class, and replays the
    collector the paper evaluates against: a copying scavenge for the young
    generation plus mark-sweep-compact for the old generation. GC pauses are
    charged to a {!Sim_clock} using the cost model in {!Hconfig}.

    Lifetime classes let frameworks declare liveness without tracing:
    - [Temp]: dead by the next minor GC (boxed temporaries);
    - [Iteration]: live until the innermost open iteration ends — this is
      the class that makes object-mode GC expensive, because such objects
      survive scavenges and are repeatedly traced by major GCs;
    - [Control]: control-path objects, freed explicitly via {!free_control};
    - [Permanent]: live for the whole execution. *)

type lifetime = Temp | Iteration | Control | Permanent

exception Out_of_memory of { at_seconds : float; live_bytes : int }
(** Raised when a major collection cannot reclaim enough space. Mirrors the
    JVM's [OutOfMemoryError]; [at_seconds] is the simulated time of death. *)

type t

val create : ?clock:Sim_clock.t -> Hconfig.t -> t
(** A fresh heap; GC time is charged to [clock] (a private clock is created
    when omitted). *)

val clock : t -> Sim_clock.t
val config : t -> Hconfig.t

(** {2 Allocation} *)

val alloc : t -> lifetime:lifetime -> bytes:int -> unit
(** Allocate one object. May trigger GC; may raise {!Out_of_memory}. *)

val alloc_many : t -> lifetime:lifetime -> bytes_each:int -> count:int -> unit
(** Allocate [count] identical objects, triggering intermediate collections
    exactly as a per-object loop would, in O(collections) time. *)

val free_control : t -> bytes:int -> count:int -> unit
(** Declare [count] control objects (totalling [bytes]) unreachable. *)

(** {2 Native (off-heap) memory}

    Pages allocated by the FACADE runtime are invisible to the collector but
    count toward the process footprint (the paper's PM column). *)

val native_alloc : t -> bytes:int -> unit
val native_free : t -> bytes:int -> unit
val native_bytes : t -> int

(** {2 Iterations} *)

val iteration_start : t -> unit
(** Open a (possibly nested) iteration frame. *)

val iteration_end : t -> unit
(** Close the innermost frame: its [Iteration] objects become garbage,
    reclaimed by subsequent collections. *)

val iteration_depth : t -> int

(** {2 Observation} *)

val stats : t -> Gc_stats.t
val live_objects : t -> int
val live_bytes : t -> int
val heap_used_bytes : t -> int
(** Current heap occupancy including not-yet-collected garbage. *)

val peak_memory_bytes : t -> int
(** High-water mark of heap occupancy + native bytes (the paper samples this
    from [pmap]). *)

val force_major_gc : t -> unit
(** Run a full collection now (used by tests and at shutdown). *)

(** {2 Per-domain shards}

    A [Shard.t] is a private, lock-free accumulator of heap charges owned by
    one domain. Hot paths record allocations into their shard; the charges
    reach the shared heap only when the owner flushes (at iteration
    boundaries and thread joins), under whatever lock protects the heap.
    Additive totals (objects/bytes allocated, native bytes, live
    populations) are bit-exact against per-object charging; GC trigger
    points — and hence pause counts — may differ, the same "approximate
    under parallelism" contract the parallel VM already documents. *)
module Shard : sig
  type heap := t
  type t

  val create : unit -> t

  val is_empty : t -> bool
  (** No pending allocations, native delta, or I/O charge. *)

  val pending : t -> int * int
  (** [(objects, bytes)] accumulated since the last flush. *)

  val alloc : t -> lifetime:lifetime -> bytes:int -> unit
  val alloc_many : t -> lifetime:lifetime -> bytes_each:int -> count:int -> unit
  val native_alloc : t -> bytes:int -> unit
  val native_free : t -> bytes:int -> unit

  val charge_io : t -> seconds:float -> unit
  (** Accumulate simulated I/O time, charged to the heap's clock as [Load]
      at the next flush. *)

  val merge : dst:t -> src:t -> unit
  (** Fold [src]'s pending charges into [dst] and clear [src]. Touches no
      heap; used when a parent absorbs a joined child's shard. *)

  val flush : heap -> t -> unit
  (** Replay pending charges into the heap (allocations in first-recorded
      order via {!alloc_many}, then the net native delta, then the I/O
      charge) and clear the shard. Caller must hold the heap's lock. *)
end
