(** Sizes of Java heap objects under a 64-bit HotSpot-like layout.

    The paper's §2.4 cost comparison rests on these constants: a regular
    object header is 12 bytes (16 for arrays) on the managed heap, while a
    FACADE page record spends only 4 bytes (8 for arrays). *)

val object_header_bytes : int
(** 12 — mark word (8) + compressed class pointer (4). *)

val array_header_bytes : int
(** 16 — object header + 4-byte length, padded to 8-byte alignment. *)

val reference_bytes : int
(** 4 — compressed oops. *)

val page_wrapper_bytes : int
(** 48 — the control-heap wrapper object the runtime keeps per native
    page (header, native pointer, bump cursor, free list, thread owner).
    Charged once per page the store creates. *)

val align : int -> int
(** Round a size up to the JVM's 8-byte object alignment. *)

val object_bytes : field_bytes:int -> int
(** Total heap footprint of an object whose instance fields occupy
    [field_bytes]. *)

val array_bytes : elem_bytes:int -> length:int -> int
(** Total heap footprint of an array. *)
