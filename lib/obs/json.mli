(** A minimal JSON value type with a printer and a parser.

    Used by the Chrome [trace_event] exporter (escaping-safe emission) and
    by the trace schema validator and the golden-trace tests (round-trip
    parsing) — the toolchain has no JSON library baked in, so this small
    one is part of the observability layer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Integral floats print without a decimal point;
    strings are escaped per RFC 8259. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the full value grammar (objects, arrays,
    strings with escapes incl. [\uXXXX], numbers, literals). Errors carry
    a byte offset. Trailing non-whitespace is an error. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value only. *)

val to_str : t -> string option
val to_list : t -> t list option
