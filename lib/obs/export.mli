(** Trace exporters: Chrome [trace_event] JSON and a plain-text profile
    report. *)

val chrome_json_string : Tracer.t -> string
(** Render the retained events as a Chrome trace
    ([{"traceEvents":[...]}], JSON Array Format with an object wrapper)
    loadable in Perfetto / [chrome://tracing]. Lanes map to thread ids
    ([tid]); each lane gets a [thread_name] metadata event. Timestamps
    are microseconds. End events whose Begin was overwritten by the ring
    are dropped so every emitted B/E pair balances; still-open spans
    contribute a B without an E (viewers render these as unfinished). *)

val write_chrome : Tracer.t -> string -> unit
(** [write_chrome t path] writes {!chrome_json_string} to [path]. *)

type check = {
  ck_events : int;  (** total entries in [traceEvents] *)
  ck_begins : int;
  ck_ends : int;
  ck_instants : int;
  ck_meta : int;
  ck_open : int;  (** Begins never closed (not an error) *)
  ck_tids : int;  (** distinct thread lanes *)
}

val validate_chrome : string -> (check, string) result
(** Parse a Chrome trace JSON string and check the schema: a top-level
    [traceEvents] array whose entries carry [ph]/[name]/[pid]/[tid] (and
    [ts] for non-metadata events), with per-tid non-decreasing
    timestamps and every E matching an open B of the same name. *)

val profile_report : ?top:int -> Tracer.t -> string
(** Plain-text report: header totals, top [top] (default 15) spans by
    self time, GC pause table, scheduler and page-store event tables.
    Sections with no data are omitted. *)
