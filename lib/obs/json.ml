type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_nan x then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  (* Encode a code point as UTF-8 (surrogate pairs are not recombined;
     each half encodes separately, which round-trips our own output). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' -> add_utf8 buf (parse_hex4 ())
           | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> Num (parse_number ())
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
