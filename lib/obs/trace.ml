let on = Tracer.on

let span_begin ?sim ?args ~cat name =
  match Tracer.ambient () with
  | Some t -> Tracer.span_begin t ?sim ?args ~cat name
  | None -> ()

let span_end ?sim ?sim_dur ?args () =
  match Tracer.ambient () with
  | Some t -> Tracer.span_end t ?sim ?sim_dur ?args ()
  | None -> ()

let instant ?sim ?args ~cat name =
  match Tracer.ambient () with
  | Some t -> Tracer.instant t ?sim ?args ~cat name
  | None -> ()

let counter ~name v =
  match Tracer.ambient () with Some t -> Tracer.counter t ~name v | None -> ()

let histogram ~name v =
  match Tracer.ambient () with Some t -> Tracer.histogram t ~name v | None -> ()

let with_span ~cat name f =
  match Tracer.ambient () with Some t -> Tracer.with_span t ~cat name f | None -> f ()
