type arg = Aint of int | Afloat of float | Astr of string
type phase = Begin | End | Instant

type event = {
  ph : phase;
  ts : float;
  sim : float;
  cat : string;
  name : string;
  args : (string * arg) list;
}

type agg = {
  mutable a_count : int;
  mutable a_wall : float;
  mutable a_self : float;
  mutable a_sim : float;
}

type counter_cell = { mutable c_last : float; mutable c_total : float; mutable c_count : int }

type hist_cell = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type open_span = {
  os_cat : string;
  os_name : string;
  os_ts : float;
  os_sim : float;
  mutable os_child : float;  (* wall seconds spent in completed child spans *)
}

(* One lane per domain (or per explicit test lane). Everything inside is
   single-writer: only the owning domain emits into it, so no emission
   path takes a lock once the lane exists. *)
type lane = {
  lid : int;
  ring : event array;
  cap : int;
  mutable seq : int;  (* total events ever emitted to this lane *)
  mutable last_ts : float;
  mutable stack : open_span list;
  mutable depth : int;
  mutable unmatched : int;
  spans : (string * string, agg) Hashtbl.t;  (* (cat, name) *)
  insts : (string * string, int ref) Hashtbl.t;
  counters : (string, counter_cell) Hashtbl.t;
  hists : (string, hist_cell) Hashtbl.t;
}

type t = {
  gen : int;  (* unique tracer id, keys the domain-local lane cache *)
  cap : int;
  epoch : float;
  mu : Mutex.t;  (* guards [lanes] (creation/enumeration), never emission *)
  lanes_tbl : (int, lane) Hashtbl.t;
}

let default_ring_capacity = 1 lsl 16

let dummy_event = { ph = Instant; ts = 0.; sim = Float.nan; cat = ""; name = ""; args = [] }

let next_gen = Atomic.make 0

let create ?(ring_capacity = default_ring_capacity) () =
  if ring_capacity <= 0 then invalid_arg "Tracer.create: non-positive ring capacity";
  {
    gen = Atomic.fetch_and_add next_gen 1;
    cap = ring_capacity;
    epoch = Unix.gettimeofday ();
    mu = Mutex.create ();
    lanes_tbl = Hashtbl.create 8;
  }

let ring_capacity t = t.cap

(* ---------- lanes ---------- *)

let make_lane t lid =
  {
    lid;
    ring = Array.make t.cap dummy_event;
    cap = t.cap;
    seq = 0;
    last_ts = 0.;
    stack = [];
    depth = 0;
    unmatched = 0;
    spans = Hashtbl.create 32;
    insts = Hashtbl.create 32;
    counters = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let lane_locked t lid =
  Mutex.lock t.mu;
  let l =
    match Hashtbl.find_opt t.lanes_tbl lid with
    | Some l -> l
    | None ->
        let l = make_lane t lid in
        Hashtbl.replace t.lanes_tbl lid l;
        l
  in
  Mutex.unlock t.mu;
  l

(* Domain-local cache of (tracer generation, lane): the common emission
   path resolves its lane without touching [mu]. *)
let lane_cache : (int * lane) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let my_lane t =
  match Domain.DLS.get lane_cache with
  | Some (gen, l) when gen = t.gen -> l
  | _ ->
      let l = lane_locked t (Domain.self () :> int) in
      Domain.DLS.set lane_cache (Some (t.gen, l));
      l

let lane_of t = function None -> my_lane t | Some lid -> lane_locked t lid

(* ---------- ambient ---------- *)

let ambient_cell : t option Atomic.t = Atomic.make None
let on_cell = Atomic.make false

let install t =
  Atomic.set ambient_cell (Some t);
  Atomic.set on_cell true

let uninstall () =
  Atomic.set on_cell false;
  Atomic.set ambient_cell None

let ambient () = Atomic.get ambient_cell
let on () = Atomic.get on_cell

(* ---------- emission ---------- *)

let now t l =
  let x = Unix.gettimeofday () -. t.epoch in
  let x = if x >= l.last_ts then x else l.last_ts in
  l.last_ts <- x;
  x

let push l ev =
  l.ring.(l.seq mod l.cap) <- ev;
  l.seq <- l.seq + 1

let span_begin t ?lane ?(sim = Float.nan) ?(args = []) ~cat name =
  let l = lane_of t lane in
  let ts = now t l in
  l.stack <- { os_cat = cat; os_name = name; os_ts = ts; os_sim = sim; os_child = 0. } :: l.stack;
  l.depth <- l.depth + 1;
  push l { ph = Begin; ts; sim; cat; name; args }

let agg_of l key =
  match Hashtbl.find_opt l.spans key with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_wall = 0.; a_self = 0.; a_sim = 0. } in
      Hashtbl.replace l.spans key a;
      a

let span_end t ?lane ?(sim = Float.nan) ?sim_dur ?(args = []) () =
  let l = lane_of t lane in
  let ts = now t l in
  match l.stack with
  | [] ->
      l.unmatched <- l.unmatched + 1;
      push l { ph = End; ts; sim; cat = ""; name = ""; args }
  | os :: rest ->
      l.stack <- rest;
      l.depth <- l.depth - 1;
      let wall = ts -. os.os_ts in
      let self = Float.max 0. (wall -. os.os_child) in
      (match rest with parent :: _ -> parent.os_child <- parent.os_child +. wall | [] -> ());
      let simd =
        match sim_dur with
        | Some d -> d
        | None ->
            if Float.is_nan os.os_sim || Float.is_nan sim then 0. else sim -. os.os_sim
      in
      let a = agg_of l (os.os_cat, os.os_name) in
      a.a_count <- a.a_count + 1;
      a.a_wall <- a.a_wall +. wall;
      a.a_self <- a.a_self +. self;
      a.a_sim <- a.a_sim +. simd;
      push l { ph = End; ts; sim; cat = os.os_cat; name = os.os_name; args }

let instant t ?lane ?(sim = Float.nan) ?(args = []) ~cat name =
  let l = lane_of t lane in
  let ts = now t l in
  (match Hashtbl.find_opt l.insts (cat, name) with
  | Some r -> incr r
  | None -> Hashtbl.replace l.insts (cat, name) (ref 1));
  push l { ph = Instant; ts; sim; cat; name; args }

let counter t ?lane ~name v =
  let l = lane_of t lane in
  match Hashtbl.find_opt l.counters name with
  | Some c ->
      c.c_last <- v;
      c.c_total <- c.c_total +. v;
      c.c_count <- c.c_count + 1
  | None -> Hashtbl.replace l.counters name { c_last = v; c_total = v; c_count = 1 }

let histogram t ?lane ~name v =
  let l = lane_of t lane in
  match Hashtbl.find_opt l.hists name with
  | Some h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
  | None -> Hashtbl.replace l.hists name { h_count = 1; h_sum = v; h_min = v; h_max = v }

let with_span t ?lane ~cat name f =
  span_begin t ?lane ~cat name;
  Fun.protect ~finally:(fun () -> span_end t ?lane ()) f

(* ---------- introspection ---------- *)

let all_lanes t =
  Mutex.lock t.mu;
  let ls = Hashtbl.fold (fun _ l acc -> l :: acc) t.lanes_tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.lid b.lid) ls

let lanes t = List.map (fun l -> l.lid) (all_lanes t)

let find_lane t lid =
  Mutex.lock t.mu;
  let l = Hashtbl.find_opt t.lanes_tbl lid in
  Mutex.unlock t.mu;
  l

let lane_events_of l =
  let retained = min l.seq l.cap in
  List.init retained (fun i -> l.ring.((l.seq - retained + i) mod l.cap))

let lane_events t lid =
  match find_lane t lid with None -> [] | Some l -> lane_events_of l

let events t =
  List.concat_map lane_events_of (all_lanes t)
  |> List.stable_sort (fun a b -> compare a.ts b.ts)

let lane_emitted t lid = match find_lane t lid with None -> 0 | Some l -> l.seq

let lane_dropped t lid =
  match find_lane t lid with None -> 0 | Some l -> max 0 (l.seq - l.cap)

let lane_depth t lid = match find_lane t lid with None -> 0 | Some l -> l.depth

let total_emitted t = List.fold_left (fun acc l -> acc + l.seq) 0 (all_lanes t)

let total_dropped t =
  List.fold_left (fun acc l -> acc + max 0 (l.seq - l.cap)) 0 (all_lanes t)

let open_spans t = List.fold_left (fun acc l -> acc + l.depth) 0 (all_lanes t)
let unmatched_ends t = List.fold_left (fun acc l -> acc + l.unmatched) 0 (all_lanes t)

type span_stat = {
  ss_cat : string;
  ss_name : string;
  ss_count : int;
  ss_wall_total : float;
  ss_wall_self : float;
  ss_sim_total : float;
}

type counter_stat = { cs_name : string; cs_last : float; cs_total : float; cs_count : int }

type hist_stat = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

let span_stats t =
  let merged : (string * string, span_stat) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun (cat, name) a ->
          let prev =
            Option.value
              ~default:
                {
                  ss_cat = cat;
                  ss_name = name;
                  ss_count = 0;
                  ss_wall_total = 0.;
                  ss_wall_self = 0.;
                  ss_sim_total = 0.;
                }
              (Hashtbl.find_opt merged (cat, name))
          in
          Hashtbl.replace merged (cat, name)
            {
              prev with
              ss_count = prev.ss_count + a.a_count;
              ss_wall_total = prev.ss_wall_total +. a.a_wall;
              ss_wall_self = prev.ss_wall_self +. a.a_self;
              ss_sim_total = prev.ss_sim_total +. a.a_sim;
            })
        l.spans)
    (all_lanes t);
  Hashtbl.fold (fun _ s acc -> s :: acc) merged []
  |> List.sort (fun a b -> compare b.ss_wall_self a.ss_wall_self)

let instant_counts t =
  let merged : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun key r ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt merged key) in
          Hashtbl.replace merged key (prev + !r))
        l.insts)
    (all_lanes t);
  Hashtbl.fold (fun key n acc -> (key, n) :: acc) merged []
  |> List.sort (fun ((c1, n1), _) ((c2, n2), _) -> compare (c1, n1) (c2, n2))

let instant_count t ~cat name =
  List.fold_left
    (fun acc l ->
      acc + match Hashtbl.find_opt l.insts (cat, name) with Some r -> !r | None -> 0)
    0 (all_lanes t)

let counter_stats t =
  let merged : (string, counter_stat) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun name c ->
          match Hashtbl.find_opt merged name with
          | Some prev ->
              Hashtbl.replace merged name
                {
                  prev with
                  cs_last = c.c_last;
                  cs_total = prev.cs_total +. c.c_total;
                  cs_count = prev.cs_count + c.c_count;
                }
          | None ->
              Hashtbl.replace merged name
                { cs_name = name; cs_last = c.c_last; cs_total = c.c_total; cs_count = c.c_count })
        l.counters)
    (all_lanes t);
  Hashtbl.fold (fun _ c acc -> c :: acc) merged []
  |> List.sort (fun a b -> compare a.cs_name b.cs_name)

let hist_stats t =
  let merged : (string, hist_stat) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.iter
        (fun name h ->
          match Hashtbl.find_opt merged name with
          | Some prev ->
              Hashtbl.replace merged name
                {
                  prev with
                  hs_count = prev.hs_count + h.h_count;
                  hs_sum = prev.hs_sum +. h.h_sum;
                  hs_min = Float.min prev.hs_min h.h_min;
                  hs_max = Float.max prev.hs_max h.h_max;
                }
          | None ->
              Hashtbl.replace merged name
                {
                  hs_name = name;
                  hs_count = h.h_count;
                  hs_sum = h.h_sum;
                  hs_min = h.h_min;
                  hs_max = h.h_max;
                })
        l.hists)
    (all_lanes t);
  Hashtbl.fold (fun _ h acc -> h :: acc) merged []
  |> List.sort (fun a b -> compare a.hs_name b.hs_name)

let hist_stat t name = List.find_opt (fun h -> h.hs_name = name) (hist_stats t)
