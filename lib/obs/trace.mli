(** Ambient-tracer forwarders — the instrumentation surface.

    Every function is a no-op unless a tracer has been
    {!Tracer.install}ed. Hot call sites should guard with {!on} so
    argument construction (names, arg lists) is skipped entirely when
    tracing is disabled:

    {[
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"vm" "ic_miss"
    ]} *)

val on : unit -> bool
(** Single atomic load; [false] when no tracer is installed. *)

val span_begin :
  ?sim:float -> ?args:(string * Tracer.arg) list -> cat:string -> string -> unit

val span_end : ?sim:float -> ?sim_dur:float -> ?args:(string * Tracer.arg) list -> unit -> unit
val instant : ?sim:float -> ?args:(string * Tracer.arg) list -> cat:string -> string -> unit
val counter : name:string -> float -> unit
val histogram : name:string -> float -> unit

val with_span : cat:string -> string -> (unit -> 'a) -> 'a
(** Runs [f] inside a span when tracing is on, bare otherwise. *)
