module T = Tracer

(* ---------- Chrome trace_event JSON ---------- *)

let arg_json = function
  | T.Aint n -> Json.Num (float_of_int n)
  | T.Afloat x -> Json.Num x
  | T.Astr s -> Json.Str s

let event_json ~tid (ev : T.event) =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str (if ev.cat = "" then "other" else ev.cat));
      ( "ph",
        Json.Str (match ev.ph with T.Begin -> "B" | T.End -> "E" | T.Instant -> "i") );
      ("ts", Json.Num (ev.ts *. 1e6));
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let base = match ev.ph with T.Instant -> base @ [ ("s", Json.Str "t") ] | _ -> base in
  let args =
    let sim = if Float.is_nan ev.sim then [] else [ ("sim_s", Json.Num ev.sim) ] in
    sim @ List.map (fun (k, v) -> (k, arg_json v)) ev.args
  in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let lane_jsons t lid =
  let meta =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.);
        ("tid", Json.Num (float_of_int lid));
        ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" lid)) ]);
      ]
  in
  (* The ring may have overwritten a Begin whose End is still retained;
     such orphan Ends would unbalance the trace, so drop any End seen at
     depth 0 while replaying the retained suffix. *)
  let depth = ref 0 in
  let evs =
    List.filter_map
      (fun (ev : T.event) ->
        match ev.ph with
        | T.Begin ->
            incr depth;
            Some (event_json ~tid:lid ev)
        | T.End ->
            if !depth = 0 then None
            else begin
              decr depth;
              Some (event_json ~tid:lid ev)
            end
        | T.Instant -> Some (event_json ~tid:lid ev))
      (T.lane_events t lid)
  in
  meta :: evs

let chrome_json_string t =
  let events = List.concat_map (lane_jsons t) (T.lanes t) in
  Json.to_string
    (Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ms") ])

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json_string t))

(* ---------- validation ---------- *)

type check = {
  ck_events : int;
  ck_begins : int;
  ck_ends : int;
  ck_instants : int;
  ck_meta : int;
  ck_open : int;
  ck_tids : int;
}

let validate_chrome s =
  let ( let* ) = Result.bind in
  let* root = Json.parse s in
  let* events =
    match Option.bind (Json.member "traceEvents" root) Json.to_list with
    | Some l -> Ok l
    | None -> Error "missing traceEvents array"
  in
  let begins = ref 0 and ends = ref 0 and instants = ref 0 and meta = ref 0 in
  (* per-tid state: open-span name stack + last timestamp *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let err = ref None in
  List.iteri
    (fun i ev ->
      if !err = None then begin
        let fail msg = err := Some (Printf.sprintf "event %d: %s" i msg) in
        let str k = Option.bind (Json.member k ev) Json.to_str in
        let num k = Option.bind (Json.member k ev) Json.to_float in
        match (str "ph", str "name") with
        | None, _ -> fail "missing ph"
        | _, None -> fail "missing name"
        | Some ph, Some name -> (
            match (Option.bind (Json.member "tid" ev) Json.to_int, num "pid") with
            | None, _ -> fail "missing tid"
            | _, None -> fail "missing pid"
            | Some tid, Some _ ->
                if ph = "M" then incr meta
                else
                  (match num "ts" with
                  | None -> fail "missing ts"
                  | Some ts -> (
                      let lt =
                        match Hashtbl.find_opt last_ts tid with
                        | Some r -> r
                        | None ->
                            let r = ref neg_infinity in
                            Hashtbl.replace last_ts tid r;
                            r
                      in
                      if ts < !lt then
                        fail (Printf.sprintf "tid %d: ts went backwards" tid)
                      else begin
                        lt := ts;
                        let stack =
                          match Hashtbl.find_opt stacks tid with
                          | Some r -> r
                          | None ->
                              let r = ref [] in
                              Hashtbl.replace stacks tid r;
                              r
                        in
                        match ph with
                        | "B" ->
                            incr begins;
                            stack := name :: !stack
                        | "E" -> (
                            incr ends;
                            match !stack with
                            | top :: rest ->
                                if top <> name then
                                  fail
                                    (Printf.sprintf
                                       "tid %d: E %S does not match open B %S" tid name top)
                                else stack := rest
                            | [] -> fail (Printf.sprintf "tid %d: E with no open B" tid))
                        | "i" -> incr instants
                        | _ -> fail (Printf.sprintf "unknown ph %S" ph)
                      end)))
      end)
    events;
  match !err with
  | Some e -> Error e
  | None ->
      let opened = Hashtbl.fold (fun _ st acc -> acc + List.length !st) stacks 0 in
      Ok
        {
          ck_events = List.length events;
          ck_begins = !begins;
          ck_ends = !ends;
          ck_instants = !instants;
          ck_meta = !meta;
          ck_open = opened;
          ck_tids = Hashtbl.length last_ts;
        }

(* ---------- profile report ---------- *)

let ms x = Printf.sprintf "%.3f" (x *. 1000.)
let sim_s x = Printf.sprintf "%.6f" x

let profile_report ?(top = 15) t =
  let buf = Buffer.create 1024 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf body;
      Buffer.add_char buf '\n'
    end
  in
  let lanes = T.lanes t in
  Buffer.add_string buf
    (Printf.sprintf
       "== trace summary ==\nevents emitted: %d (dropped: %d)  lanes: %d  open spans: %d  \
        unmatched ends: %d\n\n"
       (T.total_emitted t) (T.total_dropped t) (List.length lanes) (T.open_spans t)
       (T.unmatched_ends t));
  (* top spans by self time *)
  let spans = T.span_stats t in
  (if spans <> [] then
     let tbl =
       Metrics.Table.create
         ~headers:[ "span"; "cat"; "count"; "total ms"; "self ms"; "sim s" ]
     in
     let rec take n = function
       | [] -> []
       | _ when n = 0 -> []
       | x :: tl -> x :: take (n - 1) tl
     in
     List.iter
       (fun (s : T.span_stat) ->
         Metrics.Table.add_row tbl
           [
             s.ss_name;
             s.ss_cat;
             Metrics.Table.cell_int s.ss_count;
             ms s.ss_wall_total;
             ms s.ss_wall_self;
             sim_s s.ss_sim_total;
           ])
       (take top spans);
     section
       (Printf.sprintf "== top spans by self time (top %d of %d) ==" top
          (List.length spans))
       (Metrics.Table.render tbl));
  (* GC pauses *)
  let gc_hists =
    List.filter
      (fun (h : T.hist_stat) ->
        h.hs_name = "gc_pause" || String.length h.hs_name > 9
        && String.sub h.hs_name 0 9 = "gc_pause_")
      (T.hist_stats t)
  in
  (if gc_hists <> [] then
     let tbl =
       Metrics.Table.create
         ~headers:[ "gc"; "pauses"; "total sim s"; "min sim s"; "max sim s" ]
     in
     List.iter
       (fun (h : T.hist_stat) ->
         Metrics.Table.add_row tbl
           [
             h.hs_name;
             Metrics.Table.cell_int h.hs_count;
             sim_s h.hs_sum;
             sim_s h.hs_min;
             sim_s h.hs_max;
           ])
       gc_hists;
     section "== GC pauses (simulated) ==" (Metrics.Table.render tbl));
  (* scheduler + store event counts *)
  let insts = T.instant_counts t in
  let by_cat cat = List.filter (fun ((c, _), _) -> c = cat) insts in
  let inst_section title cat =
    let rows = by_cat cat in
    if rows <> [] then begin
      let tbl = Metrics.Table.create ~headers:[ "event"; "count" ] in
      List.iter
        (fun ((_, name), n) -> Metrics.Table.add_row tbl [ name; Metrics.Table.cell_int n ])
        rows;
      section title (Metrics.Table.render tbl)
    end
  in
  inst_section "== scheduler events ==" "par";
  inst_section "== page store events ==" "store";
  inst_section "== VM events ==" "vm";
  (* counters *)
  let counters = T.counter_stats t in
  (if counters <> [] then
     let tbl = Metrics.Table.create ~headers:[ "counter"; "last"; "samples" ] in
     List.iter
       (fun (c : T.counter_stat) ->
         Metrics.Table.add_row tbl
           [ c.cs_name; Printf.sprintf "%g" c.cs_last; Metrics.Table.cell_int c.cs_count ])
       counters;
     section "== counters ==" (Metrics.Table.render tbl));
  Buffer.contents buf
