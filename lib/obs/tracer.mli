(** Low-overhead, domain-safe execution tracer.

    A tracer owns one {e lane} per domain (created lazily, cached in
    domain-local storage so the emission path takes no lock). Each lane
    holds a fixed-capacity ring buffer of events — when it fills, the
    oldest events are overwritten and counted in {!lane_dropped} — plus
    always-complete aggregate tables (per-span totals with self time,
    instant counts, counters, histograms) that survive ring overwrite,
    so the profile report never lies about totals.

    Timestamps are wall-clock seconds since tracer creation, clamped to
    be non-decreasing per lane. Events can additionally carry a
    simulated-clock timestamp (the heapsim {!Heapsim.Sim_clock} time) so
    simulated GC pauses are attributable next to real wall time.

    One tracer can be {!install}ed as the process-wide ambient tracer;
    instrumentation sites go through {!Trace}, whose fast guard
    ({!Trace.on}) is a single atomic load when no tracer is installed —
    the zero-cost-when-disabled contract the VM benchmarks rely on.

    Lanes default to the calling domain; the [?lane] override exists for
    deterministic single-domain tests that simulate multiple domains
    (explicit lanes are looked up under a lock and must not be driven
    from two domains at once). *)

type t

type arg = Aint of int | Afloat of float | Astr of string
type phase = Begin | End | Instant

type event = {
  ph : phase;
  ts : float;  (** monotone wall seconds since tracer creation *)
  sim : float;  (** simulated-clock seconds; [nan] when not supplied *)
  cat : string;
  name : string;
  args : (string * arg) list;
}

val default_ring_capacity : int
(** 65536 events per lane. *)

val create : ?ring_capacity:int -> unit -> t
(** [ring_capacity] must be positive (per lane). *)

val ring_capacity : t -> int

(** {2 Ambient tracer} *)

val install : t -> unit
(** Make [t] the process-wide ambient tracer ({!Trace} emits into it). *)

val uninstall : unit -> unit
val ambient : unit -> t option

val on : unit -> bool
(** Whether an ambient tracer is installed — the zero-cost guard. *)

(** {2 Emission} *)

val span_begin :
  t -> ?lane:int -> ?sim:float -> ?args:(string * arg) list -> cat:string -> string -> unit

val span_end :
  t ->
  ?lane:int ->
  ?sim:float ->
  ?sim_dur:float ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** Closes the innermost open span of the lane. [?sim_dur] overrides the
    simulated duration folded into the span's aggregate (when absent it
    is the difference of the end/begin [?sim] stamps, or 0 when either
    is missing). An end with no open span is counted in
    {!unmatched_ends} and recorded as an anonymous event. *)

val instant :
  t -> ?lane:int -> ?sim:float -> ?args:(string * arg) list -> cat:string -> string -> unit

val counter : t -> ?lane:int -> name:string -> float -> unit
(** Aggregate-only gauge: remembers last value, running total, count. *)

val histogram : t -> ?lane:int -> name:string -> float -> unit
(** Aggregate-only distribution: count, sum, min, max. Per-lane sums
    accumulate in emission order, so a single-lane histogram sum is
    bit-exact against a counterpart accumulated the same way. *)

val with_span : t -> ?lane:int -> cat:string -> string -> (unit -> 'a) -> 'a
(** Balanced even on exceptions. *)

(** {2 Introspection (quiescent reads — call after the traced run)} *)

type span_stat = {
  ss_cat : string;
  ss_name : string;
  ss_count : int;
  ss_wall_total : float;  (** seconds *)
  ss_wall_self : float;  (** total minus time in child spans *)
  ss_sim_total : float;  (** summed simulated durations *)
}

type counter_stat = { cs_name : string; cs_last : float; cs_total : float; cs_count : int }

type hist_stat = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

val span_stats : t -> span_stat list
(** Merged across lanes, sorted by descending self time. *)

val instant_count : t -> cat:string -> string -> int
val instant_counts : t -> ((string * string) * int) list
val counter_stats : t -> counter_stat list
val hist_stats : t -> hist_stat list
val hist_stat : t -> string -> hist_stat option

val lanes : t -> int list
(** Sorted ascending. *)

val lane_events : t -> int -> event list
(** Retained ring contents, oldest first. Empty for an unknown lane. *)

val events : t -> event list
(** All lanes' retained events merged, sorted by timestamp. *)

val lane_emitted : t -> int -> int
(** Total events ever emitted to the lane (retained + dropped). *)

val lane_dropped : t -> int -> int
(** Oldest-overwritten count: [max 0 (emitted - capacity)]. *)

val lane_depth : t -> int -> int
(** Currently open spans on the lane. *)

val total_emitted : t -> int
val total_dropped : t -> int
val open_spans : t -> int
val unmatched_ends : t -> int
