type t = {
  headers : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~headers =
  if headers = [] then invalid_arg "Table.create: empty header list";
  { headers; rows = [] }

let add_row t row =
  let n = List.length t.headers in
  let k = List.length row in
  if k > n then invalid_arg "Table.add_row: row longer than header";
  let row = if k < n then row @ List.init (n - k) (fun _ -> "") else row in
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
