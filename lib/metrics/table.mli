(** Plain-text aligned table rendering for the benchmark harness. *)

type t

val create : headers:string list -> t
(** Raises [Invalid_argument] on an empty header list: the header fixes
    the column count every row is checked (and padded) against, and
    {!render}'s separator math assumes at least one column. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells up to
    the header width, so ragged data renders with aligned columns; rows
    longer than the header raise [Invalid_argument]. *)

val render : t -> string
(** Render with a header separator; columns are padded to the widest cell. *)

val print : t -> unit

val cell_float : ?decimals:int -> float -> string
val cell_int : int -> string
(** Thousands-separated integer, e.g. ["14,257,280,923"]. *)
