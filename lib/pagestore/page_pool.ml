type t = {
  page_bytes : int;
  mutex : Mutex.t;
  (* [mutex] guards table growth and the fresh/oversize allocation path
     (next_id, created, native, peak_native). The recycle path — the hot
     one under many domains — is lock-free: [free] is a Treiber stack
     over an immutable list (CAS on physically fresh cons cells, so ABA
     cannot occur), and live/recycled are atomic counters. Reading a page
     id off the stack happens-before any use of that id, so the plain
     [table] read below always observes an array that contains it (grows
     only ever copy entries forward). *)
  mutable table : Page.t array;
  mutable next_id : int;
  free : int list Atomic.t; (* standard pages available for reuse *)
  live : int Atomic.t;
  mutable created : int;
  recycled : int Atomic.t;
  mutable native : int;
  mutable peak_native : int;
}

(* Unallocated and discarded table slots hold this shared zero-length
   page rather than an option: the per-access option match (tag test
   plus a dependent [Some] field load) was measurable on the facade data
   path, and a zero-length page fails every accessor's bounds check, so
   a stale id still traps. [Page.create] rejects zero bytes, so no live
   page can alias the sentinel. *)
let dead = Page.sentinel

let default_page_bytes = 32 * 1024

let create ?(page_bytes = default_page_bytes) () =
  if page_bytes <= 0 then invalid_arg "Page_pool.create: non-positive page size";
  {
    page_bytes;
    mutex = Mutex.create ();
    table = Array.make 64 dead;
    next_id = 0;
    free = Atomic.make [];
    live = Atomic.make 0;
    created = 0;
    recycled = Atomic.make 0;
    native = 0;
    peak_native = 0;
  }

let page_bytes t = t.page_bytes

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let grow_table t =
  let table = Array.make (2 * Array.length t.table) dead in
  Array.blit t.table 0 table 0 (Array.length t.table);
  t.table <- table

let fresh_page t ~bytes =
  if t.next_id >= Array.length t.table then grow_table t;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.table.(id) <- Page.create ~bytes;
  t.created <- t.created + 1;
  t.native <- t.native + bytes;
  if t.native > t.peak_native then t.peak_native <- t.native;
  id

let rec pop_free t =
  match Atomic.get t.free with
  | [] -> None
  | id :: rest as old ->
      if Atomic.compare_and_set t.free old rest then Some id else pop_free t

let rec push_free t id =
  let old = Atomic.get t.free in
  if not (Atomic.compare_and_set t.free old (id :: old)) then push_free t id

(* Distinct instant names per acquisition path keep the golden-trace
   invariants arithmetic: fresh + oversize = pages_created and
   recycled = pages_recycled, with no arg parsing. *)
let trace_page name id =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"store" ~args:[ ("page", Obs.Tracer.Aint id) ] name

let acquire t =
  Atomic.incr t.live;
  match pop_free t with
  | Some id ->
      let p = t.table.(id) in
      Page.fill p ~off:0 ~len:(Page.capacity p) '\000';
      Atomic.incr t.recycled;
      trace_page "page_recycled" id;
      id
  | None ->
      let id = with_lock t (fun () -> fresh_page t ~bytes:t.page_bytes) in
      trace_page "page_fresh" id;
      if Obs.Trace.on () then
        Obs.Trace.counter ~name:"live_pages" (float_of_int (Atomic.get t.live));
      id

let acquire_oversize t ~bytes =
  if bytes <= t.page_bytes then
    invalid_arg "Page_pool.acquire_oversize: fits in a standard page";
  Atomic.incr t.live;
  let id = with_lock t (fun () -> fresh_page t ~bytes) in
  trace_page "page_oversize" id;
  id

let release t id =
  (let p = t.table.(id) in
   if Page.capacity p = 0 then invalid_arg "Page_pool.release: page already discarded"
   else if Page.capacity p <> t.page_bytes then
     invalid_arg "Page_pool.release: oversize page");
  Atomic.decr t.live;
  push_free t id;
  trace_page "page_release" id

let release_oversize t id =
  with_lock t (fun () ->
      let p = t.table.(id) in
      if Page.capacity p = 0 then
        invalid_arg "Page_pool.release_oversize: page already discarded";
      t.native <- t.native - Page.capacity p;
      t.table.(id) <- dead;
      Atomic.decr t.live);
  trace_page "page_release_oversize" id

let[@inline never] dead_page () = invalid_arg "Page_pool.page: dead page"

let[@inline always] page t id =
  let p = t.table.(id) in
  if Page.capacity p = 0 then dead_page () else p

(* The facade data path resolves a page per access; the dim-0 sentinel
   already makes the accessors trap on a discarded id, so the hot path
   skips the redundant liveness check above. *)
let[@inline always] page_unchecked t id = t.table.(id)

let live_pages t = Atomic.get t.live
let pages_created t = t.created
let pages_recycled t = Atomic.get t.recycled
let native_bytes t = t.native
let peak_native_bytes t = t.peak_native
let free_pages t = List.length (Atomic.get t.free)
