type current = { mutable page_id : int; mutable next : int }

type t = {
  pool : Page_pool.t;
  current : current array;  (* one bump cursor per size class *)
  mutable owned : int list;
  mutable oversize : int list;
  mutable children : t list;
  mutable is_released : bool;
  mutable records : int;
  mutable bytes : int;
}

let create pool =
  {
    pool;
    current = Array.init Size_class.count (fun _ -> { page_id = -1; next = 0 });
    owned = [];
    oversize = [];
    children = [];
    is_released = false;
    records = 0;
    bytes = 0;
  }

let create_child t =
  if t.is_released then invalid_arg "Page_manager.create_child: released";
  let child = create t.pool in
  t.children <- child :: t.children;
  child

let check_live t fn = if t.is_released then invalid_arg (fn ^ ": released manager")

let fresh_page t =
  let id = Page_pool.acquire t.pool in
  t.owned <- id :: t.owned;
  id

let note t ~bytes =
  t.records <- t.records + 1;
  t.bytes <- t.bytes + bytes

let alloc_oversize t ~bytes =
  check_live t "Page_manager.alloc_oversize";
  let page_bytes = Page_pool.page_bytes t.pool in
  let alloc_bytes = max bytes (page_bytes + 1) in
  let id = Page_pool.acquire_oversize t.pool ~bytes:alloc_bytes in
  t.oversize <- id :: t.oversize;
  note t ~bytes;
  Addr.make ~page:id ~offset:0

let alloc t ~bytes =
  check_live t "Page_manager.alloc";
  if bytes <= 0 then invalid_arg "Page_manager.alloc: non-positive size";
  let page_bytes = Page_pool.page_bytes t.pool in
  if bytes > page_bytes then alloc_oversize t ~bytes
  else if bytes > page_bytes / 2 then begin
    (* Large records start on an empty page so they never share and never
       span (§3.6 policy 2). *)
    let id = fresh_page t in
    note t ~bytes;
    Addr.make ~page:id ~offset:0
  end
  else begin
    let cls =
      match Size_class.of_bytes bytes with
      | Some c -> c
      | None -> assert false (* bytes <= page_bytes/2 is always classed *)
    in
    let cur = t.current.(cls) in
    if cur.page_id < 0 || cur.next + bytes > page_bytes then begin
      cur.page_id <- fresh_page t;
      cur.next <- 0
    end;
    let addr = Addr.make ~page:cur.page_id ~offset:cur.next in
    cur.next <- cur.next + bytes;
    note t ~bytes;
    addr
  end

let release_oversize_early t addr =
  check_live t "Page_manager.release_oversize_early";
  let id = Addr.page addr in
  if not (List.mem id t.oversize) then
    invalid_arg "Page_manager.release_oversize_early: not an owned oversize page";
  t.oversize <- List.filter (fun p -> p <> id) t.oversize;
  Page_pool.release_oversize t.pool id

let rec release_all t =
  if not t.is_released then begin
    t.is_released <- true;
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"store"
        ~args:
          [
            ("pages", Obs.Tracer.Aint (List.length t.owned + List.length t.oversize));
            ("records", Obs.Tracer.Aint t.records);
          ]
        "bulk_reclaim";
    List.iter release_all t.children;
    t.children <- [];
    List.iter (Page_pool.release t.pool) t.owned;
    t.owned <- [];
    List.iter (Page_pool.release_oversize t.pool) t.oversize;
    t.oversize <- [];
    Array.iter
      (fun cur ->
        cur.page_id <- -1;
        cur.next <- 0)
      t.current
  end

let released t = t.is_released
let records_allocated t = t.records
let bytes_allocated t = t.bytes
let pages_owned t = List.length t.owned + List.length t.oversize
