(** The global page table and free list.

    All pages live in one table indexed by page id (the id is the page half
    of an {!Addr.t}). Released 32 K pages are recycled through a free list;
    oversize pages are deallocated immediately, which is what lets the
    runtime return memory early when a data structure resizes (§3.6).

    Domain-safe: the recycle path (the hot path under many workers) is a
    lock-free Treiber stack over [Atomic]; only fresh allocation and
    oversize teardown take the table mutex. *)

type t

val create : ?page_bytes:int -> unit -> t
(** [page_bytes] defaults to 32 KiB, the paper's (database-style) page
    size. *)

val page_bytes : t -> int

val acquire : t -> int
(** A standard page: recycled from the free list when possible, freshly
    allocated otherwise. *)

val acquire_oversize : t -> bytes:int -> int
(** A dedicated page of exactly [bytes] (> standard page size). *)

val release : t -> int -> unit
(** Return a standard page to the free list. *)

val release_oversize : t -> int -> unit
(** Discard an oversize page, freeing its native memory. *)

val page : t -> int -> Page.t
(** The backing storage of a live page id. *)

val page_unchecked : t -> int -> Page.t
(** [page] without the liveness check, for the per-access hot path: a
    discarded id resolves to a zero-length sentinel page, so any actual
    access still raises (from the accessor's bounds check) rather than
    reading freed storage. *)

val live_pages : t -> int
(** Pages currently held by managers (excludes the free list). *)

val pages_created : t -> int
val pages_recycled : t -> int
val native_bytes : t -> int
(** All native bytes currently allocated, including the free list (the OS
    view of the process). *)

val peak_native_bytes : t -> int

val free_pages : t -> int
(** Length of the free list (racy snapshot; exact at quiescence). *)
