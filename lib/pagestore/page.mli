(** A fixed-length block of native (off-OCaml-heap) memory.

    Pages are backed by [Bigarray], whose storage lives in malloc'd memory
    outside the garbage-collected heap — the same property the paper obtains
    from the JVM's native-memory support. All multi-byte accessors are
    little-endian and unchecked beyond bounds assertions. *)

type t

val create : bytes:int -> t
val capacity : t -> int

val sentinel : t
(** The unique zero-length page: every access to it raises, so it marks
    dead page-table slots without an option wrapper. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_i32 : t -> int -> int
(** Sign-extended 32-bit read. *)

val write_i32 : t -> int -> int -> unit
val read_i64 : t -> int -> int
(** 64-bit read, truncated to OCaml's 63-bit [int]; writers only ever store
    OCaml ints so no information is lost. *)

val write_i64 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_f32 : t -> int -> float
val write_f32 : t -> int -> float -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Used by the runtime model of [System.arraycopy]. *)

val fill : t -> off:int -> len:int -> char -> unit
