exception Pool_exhausted

type lock = {
  id : int;
  mu : Mutex.t;
  mutable owner : int;    (* logical thread id; -1 when unowned *)
  mutable entries : int;  (* reentrancy depth *)
  mutable blockers : int; (* threads inside or waiting on this lock *)
}

type t = {
  registry : Mutex.t;  (* serializes lock-field assignment and recycling *)
  locks : lock array;
  bits : Bitvec.t;
  mutable in_use : int;
  mutable peak : int;
}

let create ?(capacity = 512) () =
  if capacity <= 0 || capacity > Layout_rt.max_lock_id then
    invalid_arg "Lock_pool.create: capacity out of range";
  {
    registry = Mutex.create ();
    locks =
      Array.init capacity (fun id ->
          { id; mu = Mutex.create (); owner = -1; entries = 0; blockers = 0 });
    bits = Bitvec.create capacity;
    in_use = 0;
    peak = 0;
  }

let capacity t = Array.length t.locks

let monitor_enter t store addr ~thread =
  Mutex.lock t.registry;
  let field = Store.get_lock_field store addr in
  let l =
    if field = 0 then begin
      match Bitvec.acquire_first_free t.bits with
      | None ->
          Mutex.unlock t.registry;
          raise Pool_exhausted
      | Some id ->
          t.in_use <- t.in_use + 1;
          if t.in_use > t.peak then t.peak <- t.in_use;
          Store.set_lock_field store addr (id + 1);
          t.locks.(id)
    end
    else t.locks.(field - 1)
  in
  if l.owner = thread then begin
    (* Reentrant entry: the intrinsic lock is already held by this thread. *)
    l.entries <- l.entries + 1;
    Mutex.unlock t.registry
  end
  else begin
    l.blockers <- l.blockers + 1;
    (* Read under the registry: a live owner means we are about to block
       on [l.mu] rather than take it uncontended. *)
    let contended = l.owner >= 0 in
    Mutex.unlock t.registry;
    if contended && Obs.Trace.on () then
      Obs.Trace.instant ~cat:"store"
        ~args:[ ("lock", Obs.Tracer.Aint l.id) ]
        "lock_contended";
    Mutex.lock l.mu;
    l.owner <- thread;
    l.entries <- 1
  end

let monitor_exit t store addr ~thread =
  Mutex.lock t.registry;
  let field = Store.get_lock_field store addr in
  if field = 0 then begin
    Mutex.unlock t.registry;
    invalid_arg "Lock_pool.monitor_exit: record is not locked"
  end;
  let l = t.locks.(field - 1) in
  if l.owner <> thread then begin
    Mutex.unlock t.registry;
    invalid_arg "Lock_pool.monitor_exit: thread does not own the lock"
  end;
  l.entries <- l.entries - 1;
  if l.entries = 0 then begin
    l.owner <- -1;
    l.blockers <- l.blockers - 1;
    if l.blockers = 0 then begin
      (* Last thread out: zero the record's lock space and return the lock
         to the pool by flipping its bit (paper §3.4). *)
      Store.set_lock_field store addr 0;
      Bitvec.clear t.bits l.id;
      t.in_use <- t.in_use - 1
    end;
    Mutex.unlock l.mu
  end;
  Mutex.unlock t.registry

let locks_in_use t = t.in_use
let peak_locks_in_use t = t.peak
let bits_in_use t = Bitvec.count_set t.bits
