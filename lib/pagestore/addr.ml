type t = int

let offset_bits = 28
let offset_mask = (1 lsl offset_bits) - 1

let null = 0
let is_null a = a = 0

let make ~page ~offset =
  if page < 0 then invalid_arg "Addr.make: negative page";
  if offset < 0 || offset > offset_mask then invalid_arg "Addr.make: offset out of range";
  ((page lsl offset_bits) lor offset) + 1

(* [page]/[offset] sit on the facade data path's per-access hot path;
   [@inline always] keeps the two-instruction bodies from costing a
   cross-module call under the non-flambda backend. *)
let[@inline always] page a =
  assert (a <> 0);
  (a - 1) lsr offset_bits

let[@inline always] offset a =
  assert (a <> 0);
  (a - 1) land offset_mask

(* Decoders for an address the caller has already null-checked (the
   compiled templates test for null before resolving): the assert above
   is compiled in under the dev profile, and at one-per-access it is
   pure repetition of the caller's own check. *)
let[@inline always] page_nn a = (a - 1) lsr offset_bits
let[@inline always] offset_nn a = (a - 1) land offset_mask

let add a k =
  if a = 0 then invalid_arg "Addr.add: null";
  make ~page:(page a) ~offset:(offset a + k)

let equal = Int.equal
let compare = Int.compare
let to_int a = a
let of_int a = a

let pp ppf a =
  if is_null a then Format.pp_print_string ppf "null"
  else Format.fprintf ppf "pg%d+%d" (page a) (offset a)
