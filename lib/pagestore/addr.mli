(** Page-based references.

    In the generated program P′ every reference to a data object is replaced
    by a page reference (the paper's [long pageRef]). We pack a page id and
    a byte offset into a single OCaml [int]: 28 bits of offset (so oversize
    pages of up to 256 MiB are addressable) and the remaining bits of page
    id. The encoding is shifted by one so that {!null} is [0], matching
    Java's null. *)

type t = private int

val null : t
val is_null : t -> bool

val make : page:int -> offset:int -> t
(** Requires [page >= 0] and [0 <= offset < 2^28]. *)

val page : t -> int
val offset : t -> int

val page_nn : t -> int
val offset_nn : t -> int
(** [page]/[offset] for an address the caller already null-checked,
    skipping the redundant non-null assertion on the per-access hot
    path. *)

val add : t -> int -> t
(** [add a k] is the reference [k] bytes further into the same page. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_int : t -> int
val of_int : int -> t
val pp : Format.formatter -> t -> unit
