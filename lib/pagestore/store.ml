type thread = int

type thread_state = {
  default_mgr : Page_manager.t;
  mutable stack : Page_manager.t list;  (* innermost iteration first *)
  mutable t_records : int;  (* cumulative; owner-thread writes only *)
  mutable t_bytes : int;
}

type thread_totals = { thread_records : int; thread_bytes : int }

type t = {
  pool : Page_pool.t;
  mu : Mutex.t;  (* guards [threads] and [retired] against concurrent registration *)
  threads : (thread, thread_state) Hashtbl.t;
  retired : (thread, thread_totals) Hashtbl.t;
  records : int Atomic.t;
  (* Resource limits for multi-tenant runs; 0 means unlimited. Plain int
     reads on the allocation path — the unset check is a single compare. *)
  mutable max_live_pages : int;
  mutable max_native_bytes : int;
}

type quota_kind = Q_pages | Q_heap_bytes

exception Quota_exceeded of { kind : quota_kind; used : int; limit : int }

let quota_kind_label = function Q_pages -> "pages" | Q_heap_bytes -> "heap_bytes"

let quota_message = function
  | Quota_exceeded { kind; used; limit } ->
      Some
        (Printf.sprintf "quota exceeded: %s used=%d limit=%d"
           (quota_kind_label kind) used limit)
  | _ -> None

let create ?page_bytes () =
  {
    pool = Page_pool.create ?page_bytes ();
    mu = Mutex.create ();
    threads = Hashtbl.create 16;
    retired = Hashtbl.create 16;
    records = Atomic.make 0;
    max_live_pages = 0;
    max_native_bytes = 0;
  }

let set_limits t ?max_live_pages ?max_native_bytes () =
  (match max_live_pages with
  | Some v -> t.max_live_pages <- max 0 v
  | None -> ());
  match max_native_bytes with
  | Some v -> t.max_native_bytes <- max 0 v
  | None -> ()

(* Enforced after the page acquisition that crossed the line: the store
   may briefly hold one page past the quota, but the allocation that
   needed it never completes, so no record is ever written beyond the
   budget. Raising here propagates through the VM (and, in parallel
   runs, through the [Sched] join) and fails only the offending run —
   co-tenants hold their own stores. *)
let[@inline] check_limits t =
  if t.max_live_pages > 0 then begin
    let used = Page_pool.live_pages t.pool in
    if used > t.max_live_pages then
      raise (Quota_exceeded { kind = Q_pages; used; limit = t.max_live_pages })
  end;
  if t.max_native_bytes > 0 then begin
    let used = Page_pool.native_bytes t.pool in
    if used > t.max_native_bytes then
      raise (Quota_exceeded { kind = Q_heap_bytes; used; limit = t.max_native_bytes })
  end

let pool t = t.pool

let with_mu t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let thread_state t id =
  match with_mu t (fun () -> Hashtbl.find_opt t.threads id) with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Store: thread %d not registered" id)

let current_mgr st =
  match st.stack with [] -> st.default_mgr | m :: _ -> m

let register_thread ?parent t id =
  let parent_mgr =
    match parent with None -> None | Some p -> Some (current_mgr (thread_state t p))
  in
  with_mu t (fun () ->
      if Hashtbl.mem t.threads id then
        invalid_arg (Printf.sprintf "Store.register_thread: thread %d already registered" id);
      let default_mgr =
        match parent_mgr with
        | None -> Page_manager.create t.pool
        | Some m -> Page_manager.create_child m
      in
      Hashtbl.replace t.threads id { default_mgr; stack = []; t_records = 0; t_bytes = 0 })

let release_thread t id =
  let st = thread_state t id in
  Page_manager.release_all st.default_mgr;
  with_mu t (fun () ->
      Hashtbl.replace t.retired id
        { thread_records = st.t_records; thread_bytes = st.t_bytes };
      Hashtbl.remove t.threads id)

let thread_totals t ~thread =
  with_mu t (fun () ->
      match Hashtbl.find_opt t.threads thread with
      | Some st -> Some { thread_records = st.t_records; thread_bytes = st.t_bytes }
      | None -> Hashtbl.find_opt t.retired thread)

let iteration_start t ~thread =
  let st = thread_state t thread in
  st.stack <- Page_manager.create_child (current_mgr st) :: st.stack

let iteration_end t ~thread =
  let st = thread_state t thread in
  match st.stack with
  | [] -> invalid_arg "Store.iteration_end: no iteration open"
  | m :: rest ->
      Page_manager.release_all m;
      st.stack <- rest

let iteration_depth t ~thread = List.length (thread_state t thread).stack

let[@inline always] page_of t addr = Page_pool.page_unchecked t.pool (Addr.page addr)

let base t addr =
  let p = page_of t addr in
  (p, Addr.offset addr)

(* Page resolution against a pre-fetched page pool: callers that resolve
   many addresses in a row (the tier-2 compiled segments) hoist the
   [t.pool] load out of the loop and stay independent of any particular
   store handle. [page_in] returns the page alone — without flambda the
   tuple [base_in] returns is a real per-access heap allocation, so the
   hot compiled templates call [page_in] + [Addr.offset] separately. *)
let[@inline always] page_in pool addr = Page_pool.page_unchecked pool (Addr.page_nn addr)
let base_in pool addr = (page_in pool addr, Addr.offset addr)

(* Allocation bodies shared by the global-counter and buffered ([local])
   entry points: everything except publishing to [t.records]. *)
let alloc_record_st t st ~type_id ~data_bytes =
  if type_id < 0 || type_id > Layout_rt.max_type_id then
    invalid_arg "Store.alloc_record: type id out of range";
  let bytes = Layout_rt.record_header_bytes + data_bytes in
  let addr = Page_manager.alloc (current_mgr st) ~bytes in
  check_limits t;
  st.t_records <- st.t_records + 1;
  st.t_bytes <- st.t_bytes + bytes;
  let p, off = base t addr in
  Page.write_u16 p (off + Layout_rt.type_id_offset) type_id;
  addr

let alloc_array_st alloc t st ~type_id ~elem_bytes ~length =
  if length < 0 then invalid_arg "Store.alloc_array: negative length";
  let bytes = Layout_rt.array_header_bytes + (elem_bytes * length) in
  let addr = alloc (current_mgr st) ~bytes in
  check_limits t;
  st.t_records <- st.t_records + 1;
  st.t_bytes <- st.t_bytes + bytes;
  let p, off = base t addr in
  Page.write_u16 p (off + Layout_rt.type_id_offset) type_id;
  Page.write_i32 p (off + Layout_rt.length_offset) length;
  addr

let alloc_record t ~thread ~type_id ~data_bytes =
  let st = thread_state t thread in
  let addr = alloc_record_st t st ~type_id ~data_bytes in
  Atomic.incr t.records;
  addr

let alloc_array_with alloc t ~thread ~type_id ~elem_bytes ~length =
  let st = thread_state t thread in
  let addr = alloc_array_st alloc t st ~type_id ~elem_bytes ~length in
  Atomic.incr t.records;
  addr

let alloc_array = alloc_array_with Page_manager.alloc
let alloc_array_oversize = alloc_array_with Page_manager.alloc_oversize

let free_oversize_st st addr =
  (* The page may have been allocated by any manager on this thread's
     stack; try innermost-out. *)
  let rec try_mgrs = function
    | [] -> Page_manager.release_oversize_early st.default_mgr addr
    | m :: rest -> (
        try Page_manager.release_oversize_early m addr
        with Invalid_argument _ -> try_mgrs rest)
  in
  try_mgrs st.stack

let free_oversize_early t ~thread addr = free_oversize_st (thread_state t thread) addr

(* {2 Buffered per-domain handle} *)

type local = {
  l_store : t;
  l_thread : thread;
  l_state : thread_state;  (* resolved once, under the registry mutex *)
  mutable l_pending : int; (* records not yet published to [records] *)
}

let local t ~thread =
  { l_store = t; l_thread = thread; l_state = thread_state t thread; l_pending = 0 }

let local_thread l = l.l_thread
let local_pending l = l.l_pending

let local_flush l =
  if l.l_pending > 0 then begin
    ignore (Atomic.fetch_and_add l.l_store.records l.l_pending);
    l.l_pending <- 0
  end

let local_alloc_record l ~type_id ~data_bytes =
  let addr = alloc_record_st l.l_store l.l_state ~type_id ~data_bytes in
  l.l_pending <- l.l_pending + 1;
  addr

let local_alloc_array_with alloc l ~type_id ~elem_bytes ~length =
  let addr = alloc_array_st alloc l.l_store l.l_state ~type_id ~elem_bytes ~length in
  l.l_pending <- l.l_pending + 1;
  addr

let local_alloc_array = local_alloc_array_with Page_manager.alloc
let local_alloc_array_oversize = local_alloc_array_with Page_manager.alloc_oversize

let local_free_oversize_early l addr = free_oversize_st l.l_state addr

let local_iteration_start l =
  let st = l.l_state in
  st.stack <- Page_manager.create_child (current_mgr st) :: st.stack

let local_iteration_end l =
  let st = l.l_state in
  match st.stack with
  | [] -> invalid_arg "Store.local_iteration_end: no iteration open"
  | m :: rest ->
      Page_manager.release_all m;
      st.stack <- rest

(* The accessors below resolve page and offset separately rather than
   through [base]: without flambda, a cross-function tuple return
   allocates on every call, and these are the interpreter's per-access
   hot path. *)

let type_id t addr =
  Page.read_u16 (page_of t addr) (Addr.offset addr + Layout_rt.type_id_offset)

let array_length t addr =
  Page.read_i32 (page_of t addr) (Addr.offset addr + Layout_rt.length_offset)

let get_i8 t addr ~offset =
  Page.read_u8 (page_of t addr) (Addr.offset addr + offset)

let set_i8 t addr ~offset v =
  Page.write_u8 (page_of t addr) (Addr.offset addr + offset) v

let get_i16 t addr ~offset =
  Page.read_u16 (page_of t addr) (Addr.offset addr + offset)

let set_i16 t addr ~offset v =
  Page.write_u16 (page_of t addr) (Addr.offset addr + offset) v

let get_i32 t addr ~offset =
  Page.read_i32 (page_of t addr) (Addr.offset addr + offset)

let set_i32 t addr ~offset v =
  Page.write_i32 (page_of t addr) (Addr.offset addr + offset) v

let get_i64 t addr ~offset =
  Page.read_i64 (page_of t addr) (Addr.offset addr + offset)

let set_i64 t addr ~offset v =
  Page.write_i64 (page_of t addr) (Addr.offset addr + offset) v

let get_f32 t addr ~offset =
  Page.read_f32 (page_of t addr) (Addr.offset addr + offset)

let set_f32 t addr ~offset v =
  Page.write_f32 (page_of t addr) (Addr.offset addr + offset) v

let get_f64 t addr ~offset =
  Page.read_f64 (page_of t addr) (Addr.offset addr + offset)

let set_f64 t addr ~offset v =
  Page.write_f64 (page_of t addr) (Addr.offset addr + offset) v

let get_ref t addr ~offset = Addr.of_int (get_i64 t addr ~offset)
let set_ref t addr ~offset v = set_i64 t addr ~offset (Addr.to_int v)

let array_elem_offset ~elem_bytes ~index =
  Layout_rt.array_header_bytes + (elem_bytes * index)

let arraycopy t ~src ~src_pos ~dst ~dst_pos ~len ~elem_bytes =
  if len < 0 then invalid_arg "Store.arraycopy: negative length";
  let sp, soff = base t src in
  let dp, doff = base t dst in
  Page.blit ~src:sp
    ~src_off:(soff + array_elem_offset ~elem_bytes ~index:src_pos)
    ~dst:dp
    ~dst_off:(doff + array_elem_offset ~elem_bytes ~index:dst_pos)
    ~len:(len * elem_bytes)

let get_lock_field t addr =
  Page.read_u16 (page_of t addr) (Addr.offset addr + Layout_rt.lock_offset)

let set_lock_field t addr v =
  Page.write_u16 (page_of t addr) (Addr.offset addr + Layout_rt.lock_offset) v

type stats = {
  records_allocated : int;
  pages_created : int;
  pages_recycled : int;
  live_pages : int;
  native_bytes : int;
  peak_native_bytes : int;
}

let stats t =
  {
    records_allocated = Atomic.get t.records;
    pages_created = Page_pool.pages_created t.pool;
    pages_recycled = Page_pool.pages_recycled t.pool;
    live_pages = Page_pool.live_pages t.pool;
    native_bytes = Page_pool.native_bytes t.pool;
    peak_native_bytes = Page_pool.peak_native_bytes t.pool;
  }

let live_page_objects t = Page_pool.live_pages t.pool
