type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create ~bytes =
  if bytes <= 0 then invalid_arg "Page.create: non-positive size";
  let p = Bigarray.Array1.create Bigarray.char Bigarray.c_layout bytes in
  Bigarray.Array1.fill p '\000';
  p

let capacity = Bigarray.Array1.dim

let read_u8 (p : t) i = Char.code (Bigarray.Array1.get p i)
let write_u8 (p : t) i v = Bigarray.Array1.set p i (Char.chr (v land 0xff))

(* Multi-byte accessors bounds-check the access once up front, then read
   or write unchecked bytes; an out-of-range access falls back to the
   checked byte path so it raises exactly where (and what) a byte-wise
   walk would. Little-endian throughout. *)

let ub (p : t) i = Char.code (Bigarray.Array1.unsafe_get p i)

let wb (p : t) i v =
  Bigarray.Array1.unsafe_set p i (Char.unsafe_chr (v land 0xff))

let read_u16 p i =
  if i >= 0 && i + 2 <= Bigarray.Array1.dim p then ub p i lor (ub p (i + 1) lsl 8)
  else read_u8 p i lor (read_u8 p (i + 1) lsl 8)

let write_u16 p i v =
  if i >= 0 && i + 2 <= Bigarray.Array1.dim p then begin
    wb p i v;
    wb p (i + 1) (v lsr 8)
  end
  else begin
    write_u8 p i v;
    write_u8 p (i + 1) (v lsr 8)
  end

let read_u32 p i =
  if i >= 0 && i + 4 <= Bigarray.Array1.dim p then
    ub p i lor (ub p (i + 1) lsl 8) lor (ub p (i + 2) lsl 16)
    lor (ub p (i + 3) lsl 24)
  else read_u16 p i lor (read_u16 p (i + 2) lsl 16)

let read_i32 p i =
  let v = read_u32 p i in
  (* Sign-extend from bit 31. *)
  (v lxor 0x80000000) - 0x80000000

let write_i32 p i v =
  if i >= 0 && i + 4 <= Bigarray.Array1.dim p then begin
    wb p i v;
    wb p (i + 1) (v lsr 8);
    wb p (i + 2) (v lsr 16);
    wb p (i + 3) (v asr 24)
  end
  else begin
    write_u16 p i v;
    write_u16 p (i + 2) (v asr 16)
  end

let read_i64 p i =
  if i >= 0 && i + 8 <= Bigarray.Array1.dim p then
    ub p i lor (ub p (i + 1) lsl 8) lor (ub p (i + 2) lsl 16)
    lor (ub p (i + 3) lsl 24)
    lor (ub p (i + 4) lsl 32)
    lor (ub p (i + 5) lsl 40)
    lor (ub p (i + 6) lsl 48)
    lor (ub p (i + 7) lsl 56)
  else begin
    let lo = read_u32 p i in
    let hi = read_u32 p (i + 4) in
    lo lor (hi lsl 32)
  end

let write_i64 p i v =
  if i >= 0 && i + 8 <= Bigarray.Array1.dim p then begin
    wb p i v;
    wb p (i + 1) (v lsr 8);
    wb p (i + 2) (v lsr 16);
    wb p (i + 3) (v lsr 24);
    wb p (i + 4) (v lsr 32);
    wb p (i + 5) (v lsr 40);
    wb p (i + 6) (v lsr 48);
    wb p (i + 7) (v asr 56)
  end
  else begin
    write_i32 p i v;
    write_i32 p (i + 4) (v asr 32)
  end

(* The top bit of an IEEE double pattern would not survive a round-trip
   through OCaml's 63-bit int, so floats move as two 32-bit halves. *)
let write_f64 p i v =
  let bits = Int64.bits_of_float v in
  write_i32 p i (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  write_i32 p (i + 4) (Int64.to_int (Int64.shift_right bits 32))

let read_f64 p i =
  let lo = Int64.of_int (read_u32 p i) in
  let hi = Int64.of_int (read_i32 p (i + 4)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let read_f32 p i = Int32.float_of_bits (Int32.of_int (read_i32 p i))
let write_f32 p i v = write_i32 p i (Int32.to_int (Int32.bits_of_float v))

let blit ~src ~src_off ~dst ~dst_off ~len =
  let s = Bigarray.Array1.sub src src_off len in
  let d = Bigarray.Array1.sub dst dst_off len in
  Bigarray.Array1.blit s d

let fill p ~off ~len c = Bigarray.Array1.fill (Bigarray.Array1.sub p off len) c
