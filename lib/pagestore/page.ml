type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create ~bytes =
  if bytes <= 0 then invalid_arg "Page.create: non-positive size";
  let p = Bigarray.Array1.create Bigarray.char Bigarray.c_layout bytes in
  Bigarray.Array1.fill p '\000';
  p

let capacity = Bigarray.Array1.dim

(* A zero-length page no [create] can produce: every accessor's bounds
   check fails on it, so it serves as the pool's trap-on-use sentinel
   for unallocated and discarded table slots. *)
let sentinel : t = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

let[@inline always] read_u8 (p : t) i = Char.code (Bigarray.Array1.get p i)
let[@inline always] write_u8 (p : t) i v = Bigarray.Array1.set p i (Char.chr (v land 0xff))

(* Multi-byte accessors bounds-check the access once up front, then issue
   a single unaligned machine load or store through the bigstring
   primitives; an out-of-range access falls back to the checked byte path
   so it raises exactly where (and what) a byte-wise walk would. The
   primitives are native-endian, so the word path is additionally gated
   on little-endian hardware; big-endian targets take the (equivalent,
   slower) byte-composition path. Little-endian byte order throughout.

   The wrappers are [@inline always] so the guarded single-instruction
   path lands inline at every call site even without flambda (the
   use-site inlining threshold does not apply to the attribute); the
   byte fallbacks are hoisted out of line so the inlined body stays a
   compare-and-load. *)

external get_16u : t -> int -> int = "%caml_bigstring_get16u"
external get_32u : t -> int -> int32 = "%caml_bigstring_get32u"
external get_64u : t -> int -> int64 = "%caml_bigstring_get64u"
external set_16u : t -> int -> int -> unit = "%caml_bigstring_set16u"
external set_32u : t -> int -> int32 -> unit = "%caml_bigstring_set32u"
external set_64u : t -> int -> int64 -> unit = "%caml_bigstring_set64u"

let le = not Sys.big_endian

let[@inline never] read_u16_slow p i = read_u8 p i lor (read_u8 p (i + 1) lsl 8)

let[@inline never] write_u16_slow p i v =
  write_u8 p i v;
  write_u8 p (i + 1) (v lsr 8)

let read_u32_slow p i = read_u16_slow p i lor (read_u16_slow p (i + 2) lsl 16)

let[@inline never] read_i32_slow p i =
  let v = read_u32_slow p i in
  (v lxor 0x80000000) - 0x80000000

let[@inline never] write_i32_slow p i v =
  write_u16_slow p i v;
  write_u16_slow p (i + 2) (v asr 16)

let[@inline never] read_i64_slow p i =
  let lo = read_u32_slow p i in
  let hi = read_u32_slow p (i + 4) in
  lo lor (hi lsl 32)

let[@inline never] write_i64_slow p i v =
  write_i32_slow p i v;
  write_i32_slow p (i + 4) (v asr 32)

(* The top bit of an IEEE double pattern would not survive a round-trip
   through OCaml's 63-bit int, so the byte fallback moves floats as two
   unsigned 32-bit halves; the word path keeps all 64 bits in the
   (locally unboxed) Int64. *)
let[@inline never] write_f64_slow p i v =
  let bits = Int64.bits_of_float v in
  let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  write_i32_slow p i lo;
  write_i32_slow p (i + 4) hi

let[@inline never] read_f64_slow p i =
  let lo = Int64.of_int (read_u32_slow p i) in
  let hi = Int64.of_int (read_u32_slow p (i + 4)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let[@inline always] read_u16 p i =
  if le && i >= 0 && i + 2 <= Bigarray.Array1.dim p then get_16u p i land 0xffff
  else read_u16_slow p i

let[@inline always] write_u16 p i v =
  if le && i >= 0 && i + 2 <= Bigarray.Array1.dim p then set_16u p i v
  else write_u16_slow p i v

let[@inline always] read_i32 p i =
  if le && i >= 0 && i + 4 <= Bigarray.Array1.dim p then
    (* [Int32.to_int] sign-extends from bit 31 for free. *)
    Int32.to_int (get_32u p i)
  else read_i32_slow p i

let[@inline always] write_i32 p i v =
  if le && i >= 0 && i + 4 <= Bigarray.Array1.dim p then set_32u p i (Int32.of_int v)
  else write_i32_slow p i v

let[@inline always] read_i64 p i =
  if le && i >= 0 && i + 8 <= Bigarray.Array1.dim p then
    (* Truncation to the 63-bit int drops the same top bit the byte
       composition drops. *)
    Int64.to_int (get_64u p i)
  else read_i64_slow p i

let[@inline always] write_i64 p i v =
  if le && i >= 0 && i + 8 <= Bigarray.Array1.dim p then
    (* [Int64.of_int] replicates the 63-bit sign into bit 63, exactly as
       the byte path's final [asr 56] store does. *)
    set_64u p i (Int64.of_int v)
  else write_i64_slow p i v

let[@inline always] write_f64 p i v =
  if le && i >= 0 && i + 8 <= Bigarray.Array1.dim p then
    set_64u p i (Int64.bits_of_float v)
  else write_f64_slow p i v

let[@inline always] read_f64 p i =
  if le && i >= 0 && i + 8 <= Bigarray.Array1.dim p then
    Int64.float_of_bits (get_64u p i)
  else read_f64_slow p i

let[@inline always] read_f32 p i =
  if le && i >= 0 && i + 4 <= Bigarray.Array1.dim p then
    Int32.float_of_bits (get_32u p i)
  else Int32.float_of_bits (Int32.of_int (read_i32_slow p i))

let[@inline always] write_f32 p i v =
  if le && i >= 0 && i + 4 <= Bigarray.Array1.dim p then
    set_32u p i (Int32.bits_of_float v)
  else write_i32_slow p i (Int32.to_int (Int32.bits_of_float v))

let blit ~src ~src_off ~dst ~dst_off ~len =
  let s = Bigarray.Array1.sub src src_off len in
  let d = Bigarray.Array1.sub dst dst_off len in
  Bigarray.Array1.blit s d

let fill p ~off ~len c = Bigarray.Array1.fill (Bigarray.Array1.sub p off len) c
