(** The shared lock pool (paper §3.4).

    Implicit Java locks ([synchronized (o) {…}]) cannot use facades — two
    facades bound to the same record are distinct heap objects and would
    protect nothing. Instead a pool of lock objects is shared among all
    threads: an atomic bit vector tracks which locks are in use; a record's
    2-byte lock field stores the id (+1, so 0 means unlocked) of the lock
    currently protecting it. Locks are reentrant, count their blockers, and
    return to the pool when the last blocker exits. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 512 locks; 2-byte lock ids cap it at 2^15. *)

val capacity : t -> int

val monitor_enter : t -> Store.t -> Addr.t -> thread:int -> unit
(** The generated code for [enterMonitor(o)]: finds or assigns the record's
    pool lock and acquires it (blocking across Domains; reentrant). *)

val monitor_exit : t -> Store.t -> Addr.t -> thread:int -> unit
(** Releases one entry; when the last blocker leaves, zeroes the record's
    lock field and flips the lock's bit back. *)

val locks_in_use : t -> int
val peak_locks_in_use : t -> int

val bits_in_use : t -> int
(** Set bits in the backing bit vector; equals {!locks_in_use} at
    quiescence (the stress tests assert this consistency). *)

exception Pool_exhausted
(** No free lock: more concurrently locked records than [capacity]. *)
