(** Atomic bit vector backing the shared lock pool.

    Each set bit marks a lock in use. Acquisition finds the first clear bit
    and sets it with a compare-and-swap, so it is safe under real parallel
    Domains, as the paper requires of its lock pool. *)

type t

val create : int -> t
(** [create n] is a vector of [n] clear bits. *)

val length : t -> int

val acquire_first_free : t -> int option
(** Atomically set the lowest clear bit, returning its index, or [None]
    when all bits are set. *)

val clear : t -> int -> unit
(** Atomically clear a bit. Clearing an already-clear bit is an error. *)

val is_set : t -> int -> bool
val count_set : t -> int

val lowest_clear : int -> limit:int -> int
(** Index of the lowest clear bit among the low [limit] (≤ 62) bits of a
    word, or [-1] if they are all set. Constant time (de Bruijn). *)

val lowest_clear_scan : int -> limit:int -> int
(** Reference linear-scan implementation of {!lowest_clear}, exposed so
    tests can pin the constant-time version against it. *)
