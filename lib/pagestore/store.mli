(** The FACADE runtime library (the generated code's [FacadeRuntime]).

    A store owns the global page pool and, per logical thread, a stack of
    page managers implementing nested iterations: the bottom manager is the
    thread's default ⟨⊥, t⟩ manager (records allocated before any iteration
    live until the thread terminates); {!iteration_start} pushes a child
    manager and {!iteration_end} pops and bulk-releases it, together with
    the managers of any threads registered inside that iteration. *)

type t

type thread = int
(** Logical thread id. Frameworks use deterministic logical threads; the
    runtime itself is also safe under real Domains because page managers
    are thread-local, the page pool recycles lock-free, and the thread
    registry is mutex-guarded. A given logical thread must only ever be
    driven by one domain at a time. *)

val create : ?page_bytes:int -> unit -> t
val pool : t -> Page_pool.t

(** {2 Resource limits (multi-tenant service mode)} *)

type quota_kind = Q_pages | Q_heap_bytes

exception Quota_exceeded of { kind : quota_kind; used : int; limit : int }
(** Raised by an allocation whose page acquisition pushed the store past
    a configured limit. The store may momentarily hold one page beyond
    the quota, but no record is ever placed on it: the offending
    allocation fails, and the whole run it belongs to fails with it
    (through the parallel join, if any). Other stores are untouched. *)

val set_limits : t -> ?max_live_pages:int -> ?max_native_bytes:int -> unit -> unit
(** Install per-store caps checked on every allocation. A limit of [0]
    (the initial state) disables the corresponding check; omitted
    arguments leave the current setting unchanged. *)

val quota_kind_label : quota_kind -> string
(** ["pages"] or ["heap_bytes"] — the structured admission-error codes
    the service layer reports. *)

val quota_message : exn -> string option
(** [Some "quota exceeded: ..."] for {!Quota_exceeded}, [None] otherwise. *)

(** {2 Threads and iterations} *)

val register_thread : ?parent:thread -> t -> thread -> unit
(** Declare a logical thread. With [?parent], the new thread's default
    manager becomes a child of the parent's *current* manager, so it is
    reclaimed when the iteration that spawned the thread ends (§3.6). *)

val release_thread : t -> thread -> unit
(** The thread terminated: release its default manager subtree. *)

val iteration_start : t -> thread:thread -> unit
val iteration_end : t -> thread:thread -> unit
val iteration_depth : t -> thread:thread -> int

(** {2 Allocation (the compiler's [allocate] library call)} *)

val alloc_record : t -> thread:thread -> type_id:int -> data_bytes:int -> Addr.t
(** A record with a 4-byte header (type id + lock) and [data_bytes] of
    fields. The type id is written; the lock field starts empty. *)

val alloc_array : t -> thread:thread -> type_id:int -> elem_bytes:int -> length:int -> Addr.t
(** An array record: 8-byte header (type id, lock, length) + elements. *)

val alloc_array_oversize :
  t -> thread:thread -> type_id:int -> elem_bytes:int -> length:int -> Addr.t
(** Like {!alloc_array} but forced onto a dedicated oversize page that can
    be released early via {!free_oversize_early}. *)

val free_oversize_early : t -> thread:thread -> Addr.t -> unit

(** {2 Record access (the compiler's [getField]/[setField]/…)} *)

val type_id : t -> Addr.t -> int
val array_length : t -> Addr.t -> int

val get_i8 : t -> Addr.t -> offset:int -> int
val set_i8 : t -> Addr.t -> offset:int -> int -> unit
val get_i16 : t -> Addr.t -> offset:int -> int
val set_i16 : t -> Addr.t -> offset:int -> int -> unit
val get_i32 : t -> Addr.t -> offset:int -> int
val set_i32 : t -> Addr.t -> offset:int -> int -> unit
val get_i64 : t -> Addr.t -> offset:int -> int
val set_i64 : t -> Addr.t -> offset:int -> int -> unit
val get_f32 : t -> Addr.t -> offset:int -> float
val set_f32 : t -> Addr.t -> offset:int -> float -> unit
val get_f64 : t -> Addr.t -> offset:int -> float
val set_f64 : t -> Addr.t -> offset:int -> float -> unit
val get_ref : t -> Addr.t -> offset:int -> Addr.t
val set_ref : t -> Addr.t -> offset:int -> Addr.t -> unit

val array_elem_offset : elem_bytes:int -> index:int -> int
(** Byte offset of element [index] relative to the record start. *)

val base : t -> Addr.t -> Page.t * int
(** Resolve an address to its backing page and record-start byte offset —
    the page-table lookup every accessor above performs once per call.
    Exposed so compiled code that touches several fields of one record
    (array length + element, read-modify-write) can resolve the page a
    single time; the page stays valid until its iteration is reclaimed. *)

val base_in : Page_pool.t -> Addr.t -> Page.t * int
(** As {!base}, against a pre-fetched {!pool} handle: the parameterized
    fast path for code that resolves many addresses per store lookup —
    tier-2 compiled segments take the pool once at segment entry, which
    both hoists the per-access handle dereference and keeps compiled
    code independent of the run's store. *)

val page_in : Page_pool.t -> Addr.t -> Page.t
(** The page half of {!base_in} alone. Non-flambda builds allocate the
    pair {!base_in} returns on every call, so per-access compiled code
    calls this and {!Addr.offset} separately instead. The address must
    be non-null (callers null-check before resolving), and a discarded
    page id resolves to the trap-on-use sentinel rather than raising
    here. *)

val arraycopy :
  t -> src:Addr.t -> src_pos:int -> dst:Addr.t -> dst_pos:int -> len:int -> elem_bytes:int -> unit
(** The runtime model of [System.arraycopy] over paged arrays. *)

(** {2 Lock field (used by {!Lock_pool})} *)

val get_lock_field : t -> Addr.t -> int
val set_lock_field : t -> Addr.t -> int -> unit

(** {2 Statistics} *)

type stats = {
  records_allocated : int;
  pages_created : int;
  pages_recycled : int;
  live_pages : int;
  native_bytes : int;
  peak_native_bytes : int;
}

val stats : t -> stats

type thread_totals = { thread_records : int; thread_bytes : int }
(** Cumulative per-logical-thread allocation counters (records and bytes
    requested), surviving {!release_thread}. *)

val thread_totals : t -> thread:thread -> thread_totals option
(** [None] when the thread was never registered. *)

val live_page_objects : t -> int
(** The number of page wrapper objects currently on the (simulated) managed
    heap: the [p] of the paper's O(t·n + p) bound. *)

(** {2 Buffered per-domain handle}

    A [local] pins one logical thread's state so the hot allocation path
    touches no mutex and no shared atomic: the thread registry is consulted
    once at creation, and the global record counter is updated only at
    {!local_flush} (iteration boundaries and joins). Per-thread totals
    ([thread_totals]) stay exact throughout because they were always
    owner-thread-only; {!stats}[.records_allocated] lags by at most the
    pending count until the owner flushes. The usual thread-affinity rule
    applies: a [local] must only ever be driven by the one domain running
    its logical thread. *)

type local

val local : t -> thread:thread -> local
(** Pin [thread]'s state (the thread must already be registered). *)

val local_thread : local -> thread
val local_pending : local -> int
(** Records allocated through this handle and not yet published. *)

val local_flush : local -> unit
(** Publish pending record counts to the shared counter. *)

val local_alloc_record : local -> type_id:int -> data_bytes:int -> Addr.t
val local_alloc_array : local -> type_id:int -> elem_bytes:int -> length:int -> Addr.t

val local_alloc_array_oversize :
  local -> type_id:int -> elem_bytes:int -> length:int -> Addr.t

val local_free_oversize_early : local -> Addr.t -> unit
val local_iteration_start : local -> unit
val local_iteration_end : local -> unit
