let bits_per_word = 62

type t = {
  n : int;
  words : int Atomic.t array;
}

let create n =
  if n <= 0 then invalid_arg "Bitvec.create: non-positive length";
  let nwords = (n + bits_per_word - 1) / bits_per_word in
  { n; words = Array.init nwords (fun _ -> Atomic.make 0) }

let length t = t.n

let valid_bits t w =
  (* Number of meaningful bits in word [w]. *)
  min bits_per_word (t.n - (w * bits_per_word))

(* Reference implementation: linear scan. Kept for the pinning tests. *)
let lowest_clear_scan v ~limit =
  let rec go i = if i >= limit then -1 else if v land (1 lsl i) = 0 then i else go (i + 1) in
  go 0

(* De Bruijn multiplication table for bit-scan-forward over 64-bit words
   (constant 0x03f79d71b4cb0a89). *)
let debruijn64 = 0x03f79d71b4cb0a89L

let debruijn_index =
  [|
    0; 1; 48; 2; 57; 49; 28; 3; 61; 58; 50; 42; 38; 29; 17; 4;
    62; 55; 59; 36; 53; 51; 43; 22; 45; 39; 33; 30; 24; 18; 12; 5;
    63; 47; 56; 27; 60; 41; 37; 16; 54; 35; 52; 21; 44; 32; 23; 11;
    46; 26; 40; 15; 34; 20; 31; 10; 25; 14; 19; 9; 13; 8; 7; 6;
  |]

(* Index of the lowest clear bit among the low [limit] bits, or -1.
   Constant time: complement, isolate the lowest set bit, and look its
   position up via a de Bruijn multiply. The multiply runs in Int64
   because a 62-bit isolated bit times the 64-bit constant does not fit
   OCaml's 63-bit native int. *)
let lowest_clear v ~limit =
  if limit <= 0 then -1
  else
    (* At [limit = 62] the shift wraps so that the subtraction yields
       [max_int] — exactly bits 0..61 set, the mask we want. *)
    let mask = (1 lsl limit) - 1 in
    let inv = lnot v land mask in
    if inv = 0 then -1
    else
      let bit = inv land -inv in
      debruijn_index.(Int64.(
        to_int (shift_right_logical (mul (of_int bit) debruijn64) 58)))

let acquire_first_free t =
  let nwords = Array.length t.words in
  let rec try_word w =
    if w >= nwords then None
    else
      let v = Atomic.get t.words.(w) in
      match lowest_clear v ~limit:(valid_bits t w) with
      | -1 -> try_word (w + 1)
      | b ->
          if Atomic.compare_and_set t.words.(w) v (v lor (1 lsl b)) then
            Some ((w * bits_per_word) + b)
          else try_word w (* contention: retry the same word *)
  in
  try_word 0

let clear t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec.clear: index out of range";
  let w = i / bits_per_word and b = i mod bits_per_word in
  let rec loop () =
    let v = Atomic.get t.words.(w) in
    if v land (1 lsl b) = 0 then invalid_arg "Bitvec.clear: bit already clear";
    if not (Atomic.compare_and_set t.words.(w) v (v land lnot (1 lsl b))) then loop ()
  in
  loop ()

let is_set t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec.is_set: index out of range";
  Atomic.get t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let count_set t =
  Array.fold_left
    (fun acc w ->
      let v = ref (Atomic.get w) and c = ref 0 in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr c
      done;
      acc + !c)
    0 t.words
