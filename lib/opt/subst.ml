open Jir

(* Variable substitution over instructions, split into "uses only" (copy
   propagation must not rewrite the defined variable) and "everything"
   (the inliner alpha-renames whole bodies). *)

let operand f = function Ir.Var v -> Ir.Var (f v) | Ir.Imm _ as o -> o

let uses_instr f = function
  | Ir.Const _ as i -> i
  | Ir.Move (d, s) -> Ir.Move (d, f s)
  | Ir.Binop (d, op, x, y) -> Ir.Binop (d, op, f x, f y)
  | Ir.Unop (d, op, x) -> Ir.Unop (d, op, f x)
  | Ir.New _ as i -> i
  | Ir.New_array (d, t, n) -> Ir.New_array (d, t, f n)
  | Ir.Field_load (d, o, fld) -> Ir.Field_load (d, f o, fld)
  | Ir.Field_store (o, fld, s) -> Ir.Field_store (f o, fld, f s)
  | Ir.Static_load _ as i -> i
  | Ir.Static_store (c, g, s) -> Ir.Static_store (c, g, f s)
  | Ir.Array_load (d, a, i) -> Ir.Array_load (d, f a, f i)
  | Ir.Array_store (a, i, s) -> Ir.Array_store (f a, f i, f s)
  | Ir.Array_length (d, a) -> Ir.Array_length (d, f a)
  | Ir.Call (ret, k, c, n, recv, args) ->
      Ir.Call (ret, k, c, n, Option.map f recv, List.map f args)
  | Ir.Instance_of (d, s, t) -> Ir.Instance_of (d, f s, t)
  | Ir.Cast (d, s, t) -> Ir.Cast (d, f s, t)
  | Ir.Monitor_enter v -> Ir.Monitor_enter (f v)
  | Ir.Monitor_exit v -> Ir.Monitor_exit (f v)
  | (Ir.Iter_start | Ir.Iter_end) as i -> i
  | Ir.Intrinsic (ret, n, ops) -> Ir.Intrinsic (ret, n, List.map (operand f) ops)

let uses_term f = function
  | Ir.Ret (Some v) -> Ir.Ret (Some (f v))
  | Ir.Ret None as t -> t
  | Ir.Jump _ as t -> t
  | Ir.Branch (v, a, b) -> Ir.Branch (f v, a, b)

let rename_instr f ins =
  let ins = uses_instr f ins in
  match ins with
  | Ir.Const (d, c) -> Ir.Const (f d, c)
  | Ir.Move (d, s) -> Ir.Move (f d, s)
  | Ir.Binop (d, op, x, y) -> Ir.Binop (f d, op, x, y)
  | Ir.Unop (d, op, x) -> Ir.Unop (f d, op, x)
  | Ir.New (d, c) -> Ir.New (f d, c)
  | Ir.New_array (d, t, n) -> Ir.New_array (f d, t, n)
  | Ir.Field_load (d, o, fld) -> Ir.Field_load (f d, o, fld)
  | Ir.Static_load (d, c, g) -> Ir.Static_load (f d, c, g)
  | Ir.Array_load (d, a, i) -> Ir.Array_load (f d, a, i)
  | Ir.Array_length (d, a) -> Ir.Array_length (f d, a)
  | Ir.Call (ret, k, c, n, recv, args) -> Ir.Call (Option.map f ret, k, c, n, recv, args)
  | Ir.Instance_of (d, s, t) -> Ir.Instance_of (f d, s, t)
  | Ir.Cast (d, s, t) -> Ir.Cast (f d, s, t)
  | Ir.Intrinsic (ret, n, ops) -> Ir.Intrinsic (Option.map f ret, n, ops)
  | Ir.Field_store _ | Ir.Static_store _ | Ir.Array_store _ | Ir.Monitor_enter _
  | Ir.Monitor_exit _ | Ir.Iter_start | Ir.Iter_end ->
      ins
