open Jir

(* Copy propagation: forward "copy-of" environments solved with the PR-1
   worklist solver. A variable maps to the root of its copy chain; any
   redefinition kills both the variable's own entry and every entry that
   named it as a root. Uses are rewritten to the root, which turns the
   inliner's parameter moves into dead code for DCE to sweep. *)

module Smap = Map.Make (String)

type cell = Copy_of of Ir.var | Any

type env = Unreached | Env of cell Smap.t

module L = struct
  type t = env

  let cell_equal a b =
    match a, b with
    | Copy_of x, Copy_of y -> String.equal x y
    | Any, Any -> true
    | _ -> false

  let equal a b =
    match a, b with
    | Unreached, Unreached -> true
    | Env a, Env b -> Smap.equal cell_equal a b
    | _ -> false

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | Env a, Env b ->
        Env
          (Smap.merge
             (fun _ a b ->
               match a, b with
               | Some x, Some y when cell_equal x y -> Some x
               | _ -> Some Any)
             a b)
end

module S = Analysis.Dataflow.Solver (L)

let lookup env v = match Smap.find_opt v env with Some (Copy_of r) -> r | _ -> v

(* Redefining [d] invalidates d's own entry and every chain rooted at d. *)
let kill env d =
  let env = Smap.remove d env in
  Smap.map (function Copy_of r when String.equal r d -> Any | c -> c) env

let transfer_instr env ins =
  match ins with
  | Ir.Move (d, s) ->
      let root = lookup env s in
      let env = kill env d in
      if String.equal root d then env else Smap.add d (Copy_of root) env
  | _ -> (
      match Analysis.Defuse.def ins with Some d -> kill env d | None -> env)

let block_out (blk : Ir.block) env =
  match env with
  | Unreached -> Unreached
  | Env e -> Env (List.fold_left transfer_instr e blk.Ir.instrs)

let run_meth count (m : Ir.meth) =
  let nb = Array.length m.Ir.body in
  if nb = 0 then m
  else begin
    let cfg = Analysis.Cfg.of_method m in
    let r =
      S.solve ~dir:Analysis.Dataflow.Forward ~cfg ~init:(Env Smap.empty)
        ~bottom:Unreached
        ~transfer:(fun b env -> block_out m.Ir.body.(b) env)
    in
    let body =
      Array.mapi
        (fun b (blk : Ir.block) ->
          match r.S.inb.(b) with
          | Unreached -> blk
          | Env env0 ->
              let env = ref env0 in
              let subst v =
                let r = lookup !env v in
                if not (String.equal r v) then incr count;
                r
              in
              let instrs =
                List.map
                  (fun ins ->
                    let ins = Subst.uses_instr subst ins in
                    env := transfer_instr !env ins;
                    ins)
                  blk.Ir.instrs
              in
              let term = Subst.uses_term subst blk.Ir.term in
              { Ir.instrs; term })
        m.Ir.body
    in
    { m with Ir.body }
  end

let run p =
  let count = ref 0 in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let c' = { c with Ir.cmethods = List.map (run_meth count) c.Ir.cmethods } in
        Program.replace_class acc c')
      p (Program.classes p)
  in
  (p', !count)
