open Jir

(* Liveness-based dead-code elimination (reuses the PR-1 liveness
   analysis). An instruction is removed only when its result is dead AND
   executing it can neither fault nor touch observable state: allocations
   stay (heapsim/pagestore metrics are part of the differential contract),
   as do loads that can throw (null receiver, bounds), casts, calls,
   intrinsics, and integer division. Iterates to a fixpoint because
   removing one dead instruction can kill the operands feeding it. *)

let is_float_prim = function
  | Some (Jtype.Prim (Jtype.Float | Jtype.Double)) -> true
  | _ -> false

let is_prim = function Some (Jtype.Prim _) -> true | _ -> false

let removable (m : Ir.meth) ins =
  match ins with
  | Ir.Const _ | Ir.Move _ | Ir.Instance_of _ | Ir.Static_load _ -> true
  | Ir.Unop (_, Ir.Not, _) -> true
  | Ir.Unop (_, Ir.Neg, x) -> is_prim (Ir.var_type m x)
  | Ir.Binop (_, op, x, y) -> (
      match op with
      | Ir.Eq | Ir.Ne -> true (* reference equality never faults *)
      | Ir.Div | Ir.Rem ->
          (* float division cannot trap; integer division by zero must *)
          is_prim (Ir.var_type m x) && is_prim (Ir.var_type m y)
          && (is_float_prim (Ir.var_type m x) || is_float_prim (Ir.var_type m y))
      | _ -> is_prim (Ir.var_type m x) && is_prim (Ir.var_type m y))
  | _ -> false

let run_meth count (m : Ir.meth) =
  let changed = ref true in
  let m = ref m in
  while !changed do
    changed := false;
    let cur = !m in
    let live = Analysis.Liveness.analyze cur in
    let body =
      Array.mapi
        (fun b (blk : Ir.block) ->
          (* Walk backwards from live-out, removing dead pure defs. *)
          let out =
            List.fold_left
              (fun s v -> Analysis.Vset.add v s)
              (Analysis.Liveness.live_out live b)
              (Analysis.Defuse.term_uses blk.Ir.term)
          in
          let live_set = ref out in
          let kept =
            List.fold_left
              (fun acc ins ->
                let dead =
                  match Analysis.Defuse.def ins with
                  | Some d -> not (Analysis.Vset.mem d !live_set)
                  | None -> false
                in
                if dead && removable cur ins then begin
                  incr count;
                  changed := true;
                  acc
                end
                else begin
                  (match Analysis.Defuse.def ins with
                  | Some d -> live_set := Analysis.Vset.remove d !live_set
                  | None -> ());
                  List.iter
                    (fun v -> live_set := Analysis.Vset.add v !live_set)
                    (Analysis.Defuse.uses ins);
                  ins :: acc
                end)
              []
              (List.rev blk.Ir.instrs)
          in
          { blk with Ir.instrs = kept })
        cur.Ir.body
    in
    m := { cur with Ir.body }
  done;
  !m

let run p =
  let count = ref 0 in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let c' = { c with Ir.cmethods = List.map (run_meth count) c.Ir.cmethods } in
        Program.replace_class acc c')
      p (Program.classes p)
  in
  (p', !count)
