open Jir
module A = Analysis
module Rn = Facade_compiler.Rt_names

(* Escape-analysis-driven lock elision. A monitor can only be contended
   when the object it locks is reachable by a second thread, so:

   - a program with no [sys.run_thread] anywhere is single-threaded and
     every [monitorenter]/[monitorexit] (and P' [lock.enter]/[lock.exit])
     is removable;
   - otherwise a monitor is removable when every abstract object its
     operand may point to is provably non-escaping per {!A.Escape} — never
     handed to a spawned thread or a static field. An empty points-to set
     keeps the monitor: no alias information means no proof.

   Enter and exit sites decide on the same (method, variable) predicate,
   so pairing (and the Monitors lint) is preserved. The elision does not
   change any pagestore metric — the shared lock pool allocates no page
   records — only the executed instruction count and the lock-pool peak. *)

let as_monitor ins =
  match ins with
  | Ir.Monitor_enter v | Ir.Monitor_exit v -> Some v
  | Ir.Intrinsic (None, n, [ Ir.Var v ])
    when String.equal n Rn.lock_enter || String.equal n Rn.lock_exit ->
      Some v
  | _ -> None

let strip keep p =
  let count = ref 0 in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let meths =
          List.map
            (fun (m : Ir.meth) ->
              let mkey = A.Callgraph.key ~cls:c.Ir.cname ~name:m.Ir.mname in
              Ir.map_blocks
                (fun _ (blk : Ir.block) ->
                  let instrs =
                    List.filter
                      (fun ins ->
                        match as_monitor ins with
                        | Some v when not (keep mkey v) ->
                            incr count;
                            false
                        | Some _ | None -> true)
                      blk.Ir.instrs
                  in
                  { blk with Ir.instrs })
                m)
            c.Ir.cmethods
        in
        Program.replace_class acc { c with Ir.cmethods = meths })
      p (Program.classes p)
  in
  (p', !count)

let run p =
  if not (A.Races.has_spawn p) then strip (fun _ _ -> false) p
  else begin
    let pt = A.Pointsto.build p in
    let esc = A.Escape.build pt in
    let keep mkey v =
      let s = A.Pointsto.pts pt ~mkey v in
      A.Pointsto.Iset.is_empty s
      || A.Pointsto.Iset.exists (fun o -> A.Escape.escapes esc o) s
    in
    strip keep p
  end
