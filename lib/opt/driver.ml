open Jir
module Pipeline = Facade_compiler.Pipeline

(* The pass driver. [optimize_program] is the raw JIR pipeline;
   [optimize_pipeline] wraps it for FACADE-transformed programs: it
   optimizes P′ between the facade transform and linking, restricts
   inlining to one side of the control/data boundary, and then re-proves
   the FACADE invariants (structural verification, the PR-1 boundary-leak
   linter, and the pipeline's own post-transform validation). A pass that
   breaks an invariant raises {!Pipeline.Invalid_transform} — an
   optimizer bug must never reach the VM. *)

type report = {
  deltas : Delta.t list;
  instrs_before : int;
  instrs_after : int;
  tier_mono : string list;
      (** method names with a single implementation (CHA over the
          optimized program) — tier-2 devirtualization feedback *)
  tier_leaves : (string * string) list;
      (** (class, method) pairs passing the structural leaf test — the
          tier-2 compiler widens its inline budget for these *)
}

let json_str s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let report_to_json r =
  Printf.sprintf
    {|{"instrs_before":%d,"instrs_after":%d,"passes":[%s],"tier_feedback":{"monomorphic":[%s],"leaves":[%s]}}|}
    r.instrs_before r.instrs_after
    (String.concat "," (List.map Delta.to_json r.deltas))
    (String.concat "," (List.map json_str r.tier_mono))
    (String.concat ","
       (List.map
          (fun (c, m) -> Printf.sprintf "[%s,%s]" (json_str c) (json_str m))
          r.tier_leaves))

let run_pass name metric enabled f (p, deltas) =
  if not enabled then (p, deltas)
  else begin
    let before = Program.total_instrs p in
    let p', count = f p in
    let after = Program.total_instrs p' in
    ( p',
      { Delta.pass = name; instrs_before = before; instrs_after = after; metric; count }
      :: deltas )
  end

let optimize_program ?(config = Config.default) ?(may_inline = fun _ _ -> true) p =
  let instrs_before = Program.total_instrs p in
  let acc = (p, []) in
  let acc = run_pass "const_fold" "folded" config.Config.const_fold Const_fold.run acc in
  let acc = run_pass "copy_prop" "copies" config.Config.copy_prop Copy_prop.run acc in
  let acc = run_pass "dce" "removed" config.Config.dce Dce.run acc in
  let acc = run_pass "devirt" "devirtualized" config.Config.devirt Devirt.run acc in
  let acc = run_pass "lock_elide" "elided" config.Config.lock_elide Lock_elide.run acc in
  let acc =
    run_pass "inline" "inlined" config.Config.inline
      (Inline.run ~budget:config.Config.inline_budget ~may_inline)
      acc
  in
  (* Cleanup round: the inliner leaves parameter moves and constant
     returns behind; sweep them with the same (toggle-respecting) passes. *)
  let acc =
    if config.Config.inline then begin
      let acc = run_pass "copy_prop'" "copies" config.Config.copy_prop Copy_prop.run acc in
      let acc = run_pass "const_fold'" "folded" config.Config.const_fold Const_fold.run acc in
      run_pass "dce'" "removed" config.Config.dce Dce.run acc
    end
    else acc
  in
  let p', deltas = acc in
  ( p',
    {
      deltas = List.rev deltas;
      instrs_before;
      instrs_after = Program.total_instrs p';
      tier_mono = Devirt.monomorphic_names p';
      tier_leaves = Inline.leaf_candidates p';
    } )

(* Inlining never crosses the control/data boundary: facade classes (and
   everything classified data) are one side, control code the other. *)
let data_side cl cls =
  Facade_compiler.Classify.is_data_class cl cls
  || String.ends_with ~suffix:"$Facade" cls

let boundary_may_inline cl caller callee = data_side cl caller = data_side cl callee

let invariant_findings (pl : Pipeline.t) p' =
  let fatal (f : Analysis.Finding.t) =
    String.equal f.Analysis.Finding.analysis "verify"
    || String.equal f.Analysis.Finding.analysis "boundary-leak"
  in
  let findings =
    Analysis.Lint.verify_findings p'
    @ Analysis.Lint.check_program ~classification:pl.Pipeline.classification p'
  in
  let lint_errs =
    List.filter_map
      (fun (f : Analysis.Finding.t) ->
        if fatal f then
          Some
            {
              Pipeline.vwhere = f.Analysis.Finding.where;
              vwhat =
                Printf.sprintf "[%s] %s" f.Analysis.Finding.analysis
                  f.Analysis.Finding.what;
            }
        else None)
      findings
  in
  Pipeline.validate_transformed pl.Pipeline.classification pl.Pipeline.bounds p'
  @ lint_errs

(* [extra_passes] exists for the regression tests: inject a deliberately
   invariant-breaking pass and watch the driver refuse it. *)
let optimize_pipeline ?(config = Config.default)
    ?(extra_passes : (string * (Program.t -> Program.t)) list = [])
    (pl : Pipeline.t) =
  let may_inline = boundary_may_inline pl.Pipeline.classification in
  let p', rep = optimize_program ~config ~may_inline pl.Pipeline.transformed in
  let p', deltas =
    List.fold_left
      (fun acc (name, f) -> run_pass name "changed" true (fun p -> (f p, 0)) acc)
      (p', List.rev rep.deltas) extra_passes
  in
  let rep =
    { rep with deltas = List.rev deltas; instrs_after = Program.total_instrs p' }
  in
  (match invariant_findings pl p' with
  | [] -> ()
  | errs -> raise (Pipeline.Invalid_transform errs));
  let pl' =
    { pl with Pipeline.transformed = p'; instrs_out = Program.total_instrs p';
      artifact = None }
  in
  (pl', rep)
