open Jir

(* Sparse conditional constant propagation at block granularity: a
   worklist over feasible CFG edges with a per-variable constant lattice.
   Folding must be bit-identical to execution, so the evaluator below
   mirrors the VM's [arith]/[truthy] semantics exactly (int/float
   promotion, [Eq]/[Ne] by reference equality, float joins by bits so
   -0.0 and NaN are never conflated) and refuses to fold anything the VM
   would trap on (integer division by zero, ill-typed operands). *)

type fv = FInt of int | FFloat of float | FStr of string | FNull

type cell = Known of fv | Varying

module Smap = Map.Make (String)

type benv = Unreached | Env of cell Smap.t

let fv_of_const = function
  | Ir.Cint n -> FInt n
  | Ir.Cfloat x -> FFloat x
  | Ir.Cbool b -> FInt (if b then 1 else 0)
  | Ir.Cnull -> FNull
  | Ir.Cstr s -> FStr s

let const_of_fv = function
  | FInt n -> Ir.Cint n
  | FFloat x -> Ir.Cfloat x
  | FStr s -> Ir.Cstr s
  | FNull -> Ir.Cnull

let fv_equal a b =
  match a, b with
  | FInt x, FInt y -> x = y
  | FFloat x, FFloat y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | FStr x, FStr y -> String.equal x y
  | FNull, FNull -> true
  | (FInt _ | FFloat _ | FStr _ | FNull), _ -> false

(* Value.truthy: Int 0 and Null are false, everything else (including
   Float 0.0 and "") is true. *)
let truthy = function FInt 0 | FNull -> false | FInt _ | FFloat _ | FStr _ -> true

(* Value.equal_ref restricted to constants. *)
let equal_ref a b =
  match a, b with
  | FNull, FNull -> true
  | FInt x, FInt y -> x = y
  | FFloat x, FFloat y -> x = y
  | FStr x, FStr y -> String.equal x y
  | (FNull | FInt _ | FFloat _ | FStr _), _ -> false

let eval_float op x y =
  match op with
  | Ir.Add -> Some (FFloat (x +. y))
  | Ir.Sub -> Some (FFloat (x -. y))
  | Ir.Mul -> Some (FFloat (x *. y))
  | Ir.Div -> Some (FFloat (x /. y))
  | Ir.Rem -> Some (FFloat (Float.rem x y))
  | _ -> None

let eval_cmp fi ff a b =
  match a, b with
  | FInt x, FInt y -> Some (FInt (if fi x y then 1 else 0))
  | FFloat x, FFloat y -> Some (FInt (if ff x y then 1 else 0))
  | FInt x, FFloat y -> Some (FInt (if ff (float_of_int x) y then 1 else 0))
  | FFloat x, FInt y -> Some (FInt (if ff x (float_of_int y) then 1 else 0))
  | _ -> None

let eval_binop op a b =
  match op, a, b with
  | Ir.Add, FInt x, FInt y -> Some (FInt (x + y))
  | Ir.Sub, FInt x, FInt y -> Some (FInt (x - y))
  | Ir.Mul, FInt x, FInt y -> Some (FInt (x * y))
  | Ir.Div, FInt _, FInt 0 -> None (* VM traps; keep the trap *)
  | Ir.Div, FInt x, FInt y -> Some (FInt (x / y))
  | Ir.Rem, FInt _, FInt 0 -> None
  | Ir.Rem, FInt x, FInt y -> Some (FInt (x mod y))
  | Ir.And, FInt x, FInt y -> Some (FInt (x land y))
  | Ir.Or, FInt x, FInt y -> Some (FInt (x lor y))
  | Ir.Xor, FInt x, FInt y -> Some (FInt (x lxor y))
  | Ir.Shl, FInt x, FInt y -> Some (FInt (x lsl y))
  | Ir.Shr, FInt x, FInt y -> Some (FInt (x asr y))
  | Ir.Add, FFloat x, FFloat y -> Some (FFloat (x +. y))
  | Ir.Sub, FFloat x, FFloat y -> Some (FFloat (x -. y))
  | Ir.Mul, FFloat x, FFloat y -> Some (FFloat (x *. y))
  | Ir.Div, FFloat x, FFloat y -> Some (FFloat (x /. y))
  | Ir.Rem, FFloat x, FFloat y -> Some (FFloat (Float.rem x y))
  | (Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem), FInt x, FFloat y ->
      eval_float op (float_of_int x) y
  | (Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem), FFloat x, FInt y ->
      eval_float op x (float_of_int y)
  | Ir.Lt, x, y -> eval_cmp ( < ) ( < ) x y
  | Ir.Le, x, y -> eval_cmp ( <= ) ( <= ) x y
  | Ir.Gt, x, y -> eval_cmp ( > ) ( > ) x y
  | Ir.Ge, x, y -> eval_cmp ( >= ) ( >= ) x y
  | Ir.Eq, x, y -> Some (FInt (if equal_ref x y then 1 else 0))
  | Ir.Ne, x, y -> Some (FInt (if equal_ref x y then 0 else 1))
  | _ -> None

let eval_unop op a =
  match op, a with
  | Ir.Neg, FInt x -> Some (FInt (-x))
  | Ir.Neg, FFloat x -> Some (FFloat (-.x))
  | Ir.Not, v -> Some (FInt (if truthy v then 0 else 1))
  | Ir.Neg, (FStr _ | FNull) -> None

(* Frame slots start at their type defaults (Value.default_of), so locals
   are Known at entry; params and [this] hold runtime values. *)
let entry_env (m : Ir.meth) =
  let default = function
    | Jtype.Prim (Jtype.Float | Jtype.Double) -> FFloat 0.0
    | Jtype.Prim _ -> FInt 0
    | Jtype.Ref _ | Jtype.Array _ -> FNull
  in
  let env =
    List.fold_left (fun e (v, _) -> Smap.add v Varying e) Smap.empty m.Ir.params
  in
  let env = if m.Ir.mstatic then env else Smap.add "this" Varying env in
  List.fold_left (fun e (v, t) -> Smap.add v (Known (default t)) e) env m.Ir.locals

let cell_join a b =
  match a, b with
  | Known x, Known y when fv_equal x y -> a
  | _ -> Varying

let cell_equal a b =
  match a, b with
  | Known x, Known y -> fv_equal x y
  | Varying, Varying -> true
  | _ -> false

let env_join = Smap.union (fun _ a b -> Some (cell_join a b))

let benv_join a b =
  match a, b with
  | Unreached, x | x, Unreached -> x
  | Env a, Env b -> Env (env_join a b)

let benv_equal a b =
  match a, b with
  | Unreached, Unreached -> true
  | Env a, Env b -> Smap.equal cell_equal a b
  | _ -> false

let lookup env v = try Smap.find v env with Not_found -> Varying

let transfer_instr env ins =
  match ins with
  | Ir.Const (v, c) -> Smap.add v (Known (fv_of_const c)) env
  | Ir.Move (v, s) -> Smap.add v (lookup env s) env
  | Ir.Unop (v, op, x) ->
      let cell =
        match lookup env x with
        | Known a -> (match eval_unop op a with Some k -> Known k | None -> Varying)
        | Varying -> Varying
      in
      Smap.add v cell env
  | Ir.Binop (v, op, x, y) ->
      let cell =
        match lookup env x, lookup env y with
        | Known a, Known b -> (
            match eval_binop op a b with Some k -> Known k | None -> Varying)
        | _ -> Varying
      in
      Smap.add v cell env
  | _ -> (
      match Analysis.Defuse.def ins with
      | Some d -> Smap.add d Varying env
      | None -> env)

let feasible_succs env (term : Ir.terminator) =
  match term with
  | Ir.Ret _ -> []
  | Ir.Jump t -> [ t ]
  | Ir.Branch (v, t, e) -> (
      if t = e then [ t ]
      else
        match lookup env v with
        | Known k -> [ (if truthy k then t else e) ]
        | Varying -> [ t; e ])

let block_out env (blk : Ir.block) = List.fold_left transfer_instr env blk.Ir.instrs

type stats = {
  mutable folded : int;          (* instrs rewritten to Const / Imm operands *)
  mutable branches_folded : int;
  mutable blocks_removed : int;
}

let run_meth stats (m : Ir.meth) =
  let nb = Array.length m.Ir.body in
  if nb = 0 then m
  else begin
    let inenv = Array.make nb Unreached in
    inenv.(0) <- Env (entry_env m);
    let q = Queue.create () in
    let on_q = Array.make nb false in
    let push b =
      if not on_q.(b) then begin
        on_q.(b) <- true;
        Queue.add b q
      end
    in
    push 0;
    while not (Queue.is_empty q) do
      let b = Queue.pop q in
      on_q.(b) <- false;
      match inenv.(b) with
      | Unreached -> ()
      | Env env ->
          let blk = m.Ir.body.(b) in
          let out = block_out env blk in
          List.iter
            (fun s ->
              if s >= 0 && s < nb then begin
                let joined = benv_join inenv.(s) (Env out) in
                if not (benv_equal joined inenv.(s)) then begin
                  inenv.(s) <- joined;
                  push s
                end
              end)
            (feasible_succs out blk.Ir.term)
    done;
    (* Rewrite reachable blocks under their solved in-environments. *)
    let rewritten =
      Array.mapi
        (fun b (blk : Ir.block) ->
          match inenv.(b) with
          | Unreached -> blk
          | Env env0 ->
              let env = ref env0 in
              let instrs =
                List.map
                  (fun ins ->
                    let ins =
                      match ins with
                      | Ir.Binop (v, op, x, y) -> (
                          match lookup !env x, lookup !env y with
                          | Known a, Known b -> (
                              match eval_binop op a b with
                              | Some k ->
                                  stats.folded <- stats.folded + 1;
                                  Ir.Const (v, const_of_fv k)
                              | None -> ins)
                          | _ -> ins)
                      | Ir.Unop (v, op, x) -> (
                          match lookup !env x with
                          | Known a -> (
                              match eval_unop op a with
                              | Some k ->
                                  stats.folded <- stats.folded + 1;
                                  Ir.Const (v, const_of_fv k)
                              | None -> ins)
                          | Varying -> ins)
                      | Ir.Move (v, s) -> (
                          match lookup !env s with
                          | Known k ->
                              stats.folded <- stats.folded + 1;
                              Ir.Const (v, const_of_fv k)
                          | Varying -> ins)
                      | Ir.Intrinsic (ret, n, ops) ->
                          let changed = ref false in
                          let ops =
                            List.map
                              (fun o ->
                                match o with
                                | Ir.Var v -> (
                                    match lookup !env v with
                                    | Known k ->
                                        changed := true;
                                        Ir.Imm (const_of_fv k)
                                    | Varying -> o)
                                | Ir.Imm _ -> o)
                              ops
                          in
                          if !changed then begin
                            stats.folded <- stats.folded + 1;
                            Ir.Intrinsic (ret, n, ops)
                          end
                          else ins
                      | _ -> ins
                    in
                    env := transfer_instr !env ins;
                    ins)
                  blk.Ir.instrs
              in
              let term =
                match blk.Ir.term with
                | Ir.Branch (_, t, e) when t = e -> Ir.Jump t
                | Ir.Branch (v, t, e) as tm -> (
                    match lookup !env v with
                    | Known k ->
                        stats.branches_folded <- stats.branches_folded + 1;
                        Ir.Jump (if truthy k then t else e)
                    | Varying -> tm)
                | tm -> tm
              in
              { Ir.instrs; term })
        m.Ir.body
    in
    (* Drop blocks SCCP proved unreachable, renumbering targets. *)
    let reachable = Array.map (fun e -> e <> Unreached) inenv in
    if Array.for_all Fun.id reachable then { m with Ir.body = rewritten }
    else begin
      let remap = Array.make nb (-1) in
      let next = ref 0 in
      Array.iteri
        (fun b r ->
          if r then begin
            remap.(b) <- !next;
            incr next
          end)
        reachable;
      stats.blocks_removed <- stats.blocks_removed + (nb - !next);
      let body =
        Array.of_list
          (List.filteri
             (fun b _ -> reachable.(b))
             (Array.to_list rewritten))
      in
      let body =
        Array.map
          (fun (blk : Ir.block) ->
            let term =
              match blk.Ir.term with
              | Ir.Jump t -> Ir.Jump remap.(t)
              | Ir.Branch (v, t, e) -> Ir.Branch (v, remap.(t), remap.(e))
              | tm -> tm
            in
            { blk with Ir.term })
          body
      in
      { m with Ir.body }
    end
  end

let run p =
  let stats = { folded = 0; branches_folded = 0; blocks_removed = 0 } in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let c' = { c with Ir.cmethods = List.map (run_meth stats) c.Ir.cmethods } in
        Program.replace_class acc c')
      p (Program.classes p)
  in
  (p', stats.folded + stats.branches_folded + stats.blocks_removed)
