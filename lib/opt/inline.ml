open Jir

(* Leaf-method inlining: direct (Static/Special) call sites whose callee
   is a single straight-line block of at most [budget] non-calling,
   non-monitor instructions — the facade accessors and conversion shims
   the transform synthesizes. The callee body is alpha-renamed into the
   caller, parameters become moves (copy propagation erases them), the
   Ret becomes a move of the return value. [may_inline caller callee]
   gates sites; the driver uses it to keep inlining on one side of the
   control/data boundary (DESIGN §10). *)

let inlinable_instr = function
  | Ir.Call _ | Ir.Monitor_enter _ | Ir.Monitor_exit _ | Ir.Iter_start | Ir.Iter_end
    ->
      false
  | _ -> true

(* (class, method) pairs the structural leaf test admits: single
   straight-line returning block of at most [budget] non-calling
   instructions. The pass above inlines the direct-call sites among
   them; the residue (virtual sites, cross-boundary sites) is what the
   tier-2 compiler can still inline at run time, so the driver reports
   this list as feedback. *)
let leaf_candidates ?(budget = 8) p =
  List.concat_map
    (fun (c : Ir.cls) ->
      List.filter_map
        (fun (m : Ir.meth) ->
          if
            Array.length m.Ir.body = 1
            && List.length m.Ir.body.(0).Ir.instrs <= budget
            && List.for_all inlinable_instr m.Ir.body.(0).Ir.instrs
            && match m.Ir.body.(0).Ir.term with Ir.Ret _ -> true | _ -> false
          then Some (c.Ir.cname, m.Ir.mname)
          else None)
        c.Ir.cmethods)
    (Program.classes p)

let try_inline p ~budget ~may_inline ~caller_cls ~next_id ~extra_locals ins =
  match ins with
  | Ir.Call (ret, ((Ir.Static | Ir.Special) as kind), cls, name, recv, args)
    when may_inline caller_cls cls -> (
      match Hierarchy.resolve_method p ~cls ~name with
      | Some callee
        when Array.length callee.Ir.body = 1
             && List.length callee.Ir.params = List.length args
             && (match kind with
                | Ir.Static -> callee.Ir.mstatic && recv = None
                | _ -> (not callee.Ir.mstatic) && recv <> None)
             && List.length callee.Ir.body.(0).Ir.instrs <= budget
             && List.for_all inlinable_instr callee.Ir.body.(0).Ir.instrs -> (
          let blk = callee.Ir.body.(0) in
          match blk.Ir.term, ret with
          | (Ir.Jump _ | Ir.Branch _), _ -> None
          | Ir.Ret None, Some _ -> None (* site expects a value *)
          | Ir.Ret rv, _ ->
              let id = next_id () in
              let rn = Hashtbl.create 8 in
              let bind v = Hashtbl.replace rn v (Printf.sprintf "$inl%d$%s" id v) in
              List.iter (fun (v, _) -> bind v) callee.Ir.params;
              List.iter (fun (v, _) -> bind v) callee.Ir.locals;
              if not callee.Ir.mstatic then bind "this";
              let f v = match Hashtbl.find_opt rn v with Some v' -> v' | None -> v in
              List.iter
                (fun (v, t) -> extra_locals := (f v, t) :: !extra_locals)
                (callee.Ir.params @ callee.Ir.locals);
              if not callee.Ir.mstatic then
                extra_locals := (f "this", Jtype.Ref cls) :: !extra_locals;
              let moves =
                (match recv with
                | Some r when not callee.Ir.mstatic -> [ Ir.Move (f "this", r) ]
                | _ -> [])
                @ List.map2 (fun (pv, _) a -> Ir.Move (f pv, a)) callee.Ir.params args
              in
              let body = List.map (Subst.rename_instr f) blk.Ir.instrs in
              let ret_move =
                match rv, ret with
                | Some r, Some d -> [ Ir.Move (d, f r) ]
                | _ -> []
              in
              Some (moves @ body @ ret_move))
      | _ -> None)
  | _ -> None

let run_meth p ~budget ~may_inline ~caller_cls ~next_id count (m : Ir.meth) =
  let extra_locals = ref [] in
  let body =
    Array.map
      (fun (blk : Ir.block) ->
        let instrs =
          List.concat_map
            (fun ins ->
              match
                try_inline p ~budget ~may_inline ~caller_cls ~next_id ~extra_locals
                  ins
              with
              | Some spliced ->
                  incr count;
                  spliced
              | None -> [ ins ])
            blk.Ir.instrs
        in
        { blk with Ir.instrs })
      m.Ir.body
  in
  { m with Ir.body; Ir.locals = m.Ir.locals @ List.rev !extra_locals }

let run ?(budget = 8) ?(may_inline = fun _ _ -> true) p =
  let count = ref 0 in
  let id = ref 0 in
  let next_id () =
    incr id;
    !id
  in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let meths =
          List.map
            (run_meth p ~budget ~may_inline ~caller_cls:c.Ir.cname ~next_id count)
            c.Ir.cmethods
        in
        Program.replace_class acc { c with Ir.cmethods = meths })
      p (Program.classes p)
  in
  (p', !count)
