(* One row of the per-pass report: how many instructions the program had
   before/after the pass plus the pass's own primary counter (sites folded,
   copies propagated, instructions removed, sites devirtualized, calls
   inlined). *)

type t = {
  pass : string;
  instrs_before : int;
  instrs_after : int;
  metric : string;
  count : int;
}

let removed d = d.instrs_before - d.instrs_after

let to_string d =
  Printf.sprintf "%-12s %5d -> %5d instrs (%+d)  %s=%d" d.pass d.instrs_before
    d.instrs_after (d.instrs_after - d.instrs_before) d.metric d.count

(* "instrs_removed" for the shrinkage, so a pass whose own metric is
   "removed" (dce) cannot produce a duplicate key *)
let to_json d =
  Printf.sprintf
    {|{"pass":"%s","instrs_before":%d,"instrs_after":%d,"instrs_removed":%d,"%s":%d}|}
    d.pass d.instrs_before d.instrs_after (removed d) d.metric d.count
