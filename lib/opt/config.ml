(* Every pass is independently toggleable so the differential tests and
   `facade_cli opt-report` can attribute wins (and bugs) to one pass. *)

type t = {
  const_fold : bool;   (* sparse conditional constant propagation + branch folding *)
  copy_prop : bool;
  dce : bool;
  devirt : bool;       (* class-hierarchy-analysis devirtualization *)
  lock_elide : bool;   (* escape-analysis-driven monitor removal *)
  inline : bool;       (* leaf-method inlining, same-side only *)
  inline_budget : int; (* max callee instructions eligible for inlining *)
}

let default =
  { const_fold = true; copy_prop = true; dce = true; devirt = true;
    lock_elide = true; inline = true; inline_budget = 8 }

let none =
  { const_fold = false; copy_prop = false; dce = false; devirt = false;
    lock_elide = false; inline = false; inline_budget = 0 }

let only_const_fold = { none with const_fold = true }
let only_copy_prop = { none with copy_prop = true }
let only_dce = { none with dce = true }
let only_devirt = { none with devirt = true }
let only_lock_elide = { none with lock_elide = true }
let only_inline = { none with inline = true; inline_budget = default.inline_budget }
