open Jir

(* Class-hierarchy-analysis devirtualization with per-site counting: a
   Virtual call whose receiver hierarchy resolves to exactly one concrete
   target becomes a Special call, so the linker emits a direct Rcall and
   the VM skips vtable dispatch. Sound because the class set is closed —
   see DESIGN §10 for the rt.runThread argument. Shares the candidate
   enumeration with Facade_compiler.Optimize. *)

let run p =
  let count = ref 0 in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let meths =
          List.map
            (fun m ->
              Ir.map_blocks
                (fun _ (blk : Ir.block) ->
                  let instrs =
                    List.map
                      (fun ins ->
                        match ins with
                        | Ir.Call (ret, Ir.Virtual, cls, name, recv, args) -> (
                            match
                              Facade_compiler.Optimize.possible_targets p ~cls ~name
                            with
                            | [ only ] ->
                                incr count;
                                Ir.Call (ret, Ir.Special, only, name, recv, args)
                            | _ -> ins)
                        | _ -> ins)
                      blk.Ir.instrs
                  in
                  { blk with Ir.instrs })
                m)
            c.Ir.cmethods
        in
        Program.replace_class acc { c with Ir.cmethods = meths })
      p (Program.classes p)
  in
  (p', !count)
