open Jir

(* Class-hierarchy-analysis devirtualization with per-site counting: a
   Virtual call whose receiver hierarchy resolves to exactly one concrete
   target becomes a Special call, so the linker emits a direct Rcall and
   the VM skips vtable dispatch. Sound because the class set is closed —
   see DESIGN §10 for the rt.runThread argument. Shares the candidate
   enumeration with Facade_compiler.Optimize. *)

(* Method names with exactly one (non-static) implementation anywhere in
   the closed program: a virtual call on such a name can only ever reach
   that implementation, whatever the receiver. The tier-2 compiler feeds
   on this — at a compiled call site whose inline cache misses on one of
   these names, the dispatch is delegated instead of deoptimizing the
   whole method, since the miss cannot change the target. *)
let monomorphic_names p =
  let impls = Hashtbl.create 16 in
  List.iter
    (fun (c : Ir.cls) ->
      List.iter
        (fun (m : Ir.meth) ->
          if not m.Ir.mstatic then
            Hashtbl.replace impls m.Ir.mname
              (1 + Option.value ~default:0 (Hashtbl.find_opt impls m.Ir.mname)))
        c.Ir.cmethods)
    (Program.classes p);
  Hashtbl.fold (fun n count acc -> if count = 1 then n :: acc else acc) impls []
  |> List.sort compare

let run p =
  let count = ref 0 in
  let p' =
    List.fold_left
      (fun acc (c : Ir.cls) ->
        let meths =
          List.map
            (fun m ->
              Ir.map_blocks
                (fun _ (blk : Ir.block) ->
                  let instrs =
                    List.map
                      (fun ins ->
                        match ins with
                        | Ir.Call (ret, Ir.Virtual, cls, name, recv, args) -> (
                            match
                              Facade_compiler.Optimize.possible_targets p ~cls ~name
                            with
                            | [ only ] ->
                                incr count;
                                Ir.Call (ret, Ir.Special, only, name, recv, args)
                            | _ -> ins)
                        | _ -> ins)
                      blk.Ir.instrs
                  in
                  { blk with Ir.instrs })
                m)
            c.Ir.cmethods
        in
        Program.replace_class acc { c with Ir.cmethods = meths })
      p (Program.classes p)
  in
  (p', !count)
