open Jir

(* The CHA call graph shared by the concurrency analyses (races, escape,
   certify). Nodes are method keys "Class.method" where [Class] is the
   DECLARING class of the body, so a key always resolves to one concrete
   [Ir.meth]. Virtual edges use the same class-hierarchy resolution as the
   devirtualization pass ({!Facade_compiler.Optimize.possible_targets});
   Special/Static edges walk the super chain to the declaring class.

   Post-transform programs retain the original data classes alongside
   their generated [$Facade] twins; the originals are unreachable from the
   new entry and must not contribute edges (or spurious aliasing) to the
   analysis, so any class with a [$Facade] sibling is excluded from the
   analysis universe — the same convention the boundary-leak linter
   uses. *)

type t = {
  program : Program.t;
  entry : string;
  edges : (string, string list) Hashtbl.t;
  methods : (string, Ir.cls * Ir.meth) Hashtbl.t;
  reach : (string, unit) Hashtbl.t;
}

let key ~cls ~name = cls ^ "." ^ name

let kept_original p cname =
  (not (String.ends_with ~suffix:"$Facade" cname))
  && Program.mem p (cname ^ "$Facade")

(* Declaring class of [name] starting the lookup at [cls]. *)
let declaring p cls name =
  if Option.is_some (Program.find_method p ~cls ~name) then Some cls
  else
    List.find_opt
      (fun c -> Option.is_some (Program.find_method p ~cls:c ~name))
      (Hierarchy.super_chain p cls)

let call_targets p kind cls name =
  match (kind : Ir.call_kind) with
  | Ir.Virtual ->
      List.map (fun c -> key ~cls:c ~name) (Facade_compiler.Optimize.possible_targets p ~cls ~name)
  | Ir.Special | Ir.Static -> (
      match declaring p cls name with
      | Some c -> [ key ~cls:c ~name ]
      | None -> [])

let build p =
  let edges = Hashtbl.create 64 in
  let methods = Hashtbl.create 64 in
  List.iter
    (fun (c : Ir.cls) ->
      if not (kept_original p c.Ir.cname) then
        List.iter
          (fun (m : Ir.meth) ->
            let k = key ~cls:c.Ir.cname ~name:m.Ir.mname in
            Hashtbl.replace methods k (c, m);
            let callees = ref [] in
            Ir.iter_instrs
              (function
                | Ir.Call (_, kind, cls, name, _, _) ->
                    List.iter
                      (fun t -> if not (List.mem t !callees) then callees := t :: !callees)
                      (call_targets p kind cls name)
                | _ -> ())
              m;
            Hashtbl.replace edges k (List.rev !callees))
          c.Ir.cmethods)
    (Program.classes p);
  let entry_cls, entry_m = Program.entry p in
  let entry = key ~cls:entry_cls ~name:entry_m in
  let reach = Hashtbl.create 64 in
  let rec visit k =
    if Hashtbl.mem methods k && not (Hashtbl.mem reach k) then begin
      Hashtbl.replace reach k ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt edges k))
    end
  in
  visit entry;
  { program = p; entry; edges; methods; reach }

let program t = t.program

let entry_key t = t.entry

let callees t k = Option.value ~default:[] (Hashtbl.find_opt t.edges k)

let method_of_key t k = Hashtbl.find_opt t.methods k

let is_reachable t k = Hashtbl.mem t.reach k

let reachable t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.reach [])

(* Closure over call edges from a seed set — used for "everything a spawned
   thread may execute". *)
let reachable_from t seeds =
  let seen = Hashtbl.create 16 in
  let rec visit k =
    if Hashtbl.mem t.methods k && not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      List.iter visit (callees t k)
    end
  in
  List.iter visit seeds;
  seen

let iter_methods t f =
  let keys =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.methods [])
  in
  List.iter
    (fun k ->
      let c, m = Hashtbl.find t.methods k in
      f k c m)
    keys
