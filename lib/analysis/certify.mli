(** The object-boundedness certifier.

    Re-derives the per-type facade-pool bounds from the generated P′ (the
    deepest [pool.param] slot emitted, with the slot-0 floor every data
    type gets) and cross-checks them statically against the compiler's
    {!Facade_compiler.Bounds} and at runtime against the VM's observed
    pool peaks — the paper's O(t·n + p) object bound as a checkable
    artifact. *)

type t = {
  params : int array;        (** certified parameter-pool bound, by type id *)
  receivers : int;           (** receiver facades per pool instance *)
  per_thread : int;          (** receivers + Σ params: facades per thread *)
  paper_per_thread : int;    (** the paper's t·n count: data receivers + Σ *)
}

val of_pipeline : Facade_compiler.Pipeline.t -> t

val static_errors : Facade_compiler.Pipeline.t -> t -> string list
(** Mismatches between the certificate and the compiler's pool bounds;
    empty on every well-formed compilation. *)

val validate_runtime :
  t -> max_pool_index:(int * int) list -> facades_allocated:int -> (unit, string list) result
(** Check observed per-type pool peaks (type id, max slot index) and the
    VM's total facade allocation against the certificate. *)

val to_json : Facade_compiler.Layout.t -> t -> string
