(** The FACADE invariant linter: runs the flow-sensitive analyses over a
    whole program and collects findings.

    [check_program] runs definite assignment and monitor pairing on every
    method body, plus the interprocedural race detector ({!Races}) when
    the program spawns threads; when a classification is supplied (the
    [--data] roots of [facade_cli lint], or the pipeline's own
    classification), the boundary-leak detector runs too. Structural
    verification is separate
    ({!Jir.Verify}); [verify_findings] wraps its errors in the same
    finding type so CLI output is uniform. *)

val check_program :
  ?classification:Facade_compiler.Classify.t -> Jir.Program.t -> Finding.t list

val check_method : where:string -> Jir.Ir.meth -> Finding.t list
(** The classification-independent method analyses: definite assignment
    and monitor pairing. *)

val verify_findings : Jir.Program.t -> Finding.t list
