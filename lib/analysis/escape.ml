open Jir
module Iset = Pointsto.Iset
module Rn = Facade_compiler.Rt_names

(* Thread/iteration escape analysis over the points-to abstraction.

   An abstract object escapes its creating thread when it is reachable —
   through any chain of heap edges — from a [sys.run_thread] operand
   (handed to another thread) or from a static field (visible to every
   thread). Everything else is confined: iteration-local when its site
   executes strictly inside an iteration frame (the runtime reclaims its
   pages at the matching [Iter_end]), thread-local otherwise.

   The lock-elision pass keys off [escapes]: a monitor whose operand only
   ever aliases non-escaping objects can never be contended. *)

type kind = Thread_local | Iteration_local | Escaping

let kind_label = function
  | Thread_local -> "thread-local"
  | Iteration_local -> "iteration-local"
  | Escaping -> "escaping"

type t = {
  pt : Pointsto.t;
  escaping : Iset.t;
  kinds : kind array;  (* indexed by object id *)
}

(* Iteration depth at each (block, index): a forward must-dataflow with
   meet = min over joining paths; [None] is "unreached". *)
module Dsolve = Dataflow.Solver (struct
  type t = int option

  let equal = Option.equal Int.equal

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
end)

let depth_step d ins =
  match ins with
  | Ir.Iter_start -> d + 1
  | Ir.Iter_end -> max 0 (d - 1)
  | _ -> d

let iter_depths (m : Ir.meth) =
  if Array.length m.Ir.body = 0 then [||]
  else begin
    let cfg = Cfg.of_method m in
    let r =
      Dsolve.solve ~dir:Dataflow.Forward ~cfg ~init:(Some 0) ~bottom:None
        ~transfer:(fun b st ->
          Option.map
            (fun d -> List.fold_left depth_step d m.Ir.body.(b).Ir.instrs)
            st)
    in
    Array.mapi
      (fun b (blk : Ir.block) ->
        let d = ref (Option.value ~default:0 r.Dsolve.inb.(b)) in
        Array.of_list
          (List.map
             (fun ins ->
               let here = !d in
               d := depth_step !d ins;
               here)
             blk.Ir.instrs))
      m.Ir.body
  end

let build pt =
  let cg = Pointsto.callgraph pt in
  let roots =
    List.fold_left
      (fun acc (mk, _, _, v) -> Iset.union acc (Pointsto.pts pt ~mkey:mk v))
      (Pointsto.all_static_pts pt)
      (Pointsto.spawn_sites pt)
  in
  (* close over heap edges: anything stored in an escaping object escapes *)
  let escaping = ref roots in
  let work = ref (Iset.elements roots) in
  while !work <> [] do
    let o = List.hd !work in
    work := List.tl !work;
    List.iter
      (fun f ->
        Iset.iter
          (fun o' ->
            if not (Iset.mem o' !escaping) then begin
              escaping := Iset.add o' !escaping;
              work := o' :: !work
            end)
          (Pointsto.field_pts pt o f))
      (Pointsto.fields_of pt o)
  done;
  let escaping = !escaping in
  let depth_cache = Hashtbl.create 16 in
  let depth_at mk b i =
    let arr =
      match Hashtbl.find_opt depth_cache mk with
      | Some a -> a
      | None ->
          let a =
            match Callgraph.method_of_key cg mk with
            | Some (_, m) -> iter_depths m
            | None -> [||]
          in
          Hashtbl.replace depth_cache mk a;
          a
    in
    if b < Array.length arr && i < Array.length arr.(b) then arr.(b).(i) else 0
  in
  let kinds =
    Array.init (Pointsto.num_objs pt) (fun o ->
        if Iset.mem o escaping then Escaping
        else
          let mk, b, i = Pointsto.site_of pt o in
          if depth_at mk b i > 0 then Iteration_local else Thread_local)
  in
  { pt; escaping; kinds }

let escapes t o = Iset.mem o t.escaping

let kind_of t o = t.kinds.(o)

let classify t =
  Array.to_list (Array.mapi (fun o k -> (o, k)) t.kinds)

let counts t =
  Array.fold_left
    (fun (tl, il, es) k ->
      match k with
      | Thread_local -> (tl + 1, il, es)
      | Iteration_local -> (tl, il + 1, es)
      | Escaping -> (tl, il, es + 1))
    (0, 0, 0) t.kinds

let site_report t =
  List.map
    (fun (o, k) ->
      let mk, b, i = Pointsto.site_of t.pt o in
      let cls = Option.value ~default:"?" (Pointsto.class_of t.pt o) in
      (mk, b, i, cls, k))
    (classify t)
  |> List.sort compare
