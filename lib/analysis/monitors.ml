open Jir
module Smap = Map.Make (String)

let analysis = "monitors"

(* Lattice: the multiset of held monitors (variable -> nesting depth),
   with [Unreached] below everything and [Conflict] absorbing joins of
   paths that disagree. Maps are normalized to hold only positive depths
   so structural equality is the lattice equality. *)
type state =
  | Unreached
  | Held of int Smap.t
  | Conflict

module S = Dataflow.Solver (struct
  type t = state

  let equal a b =
    match a, b with
    | Unreached, Unreached | Conflict, Conflict -> true
    | Held x, Held y -> Smap.equal Int.equal x y
    | (Unreached | Held _ | Conflict), _ -> false

  let join a b =
    match a, b with
    | Unreached, x | x, Unreached -> x
    | Conflict, _ | _, Conflict -> Conflict
    | Held x, Held y -> if Smap.equal Int.equal x y then a else Conflict
end)

let as_enter = function
  | Ir.Monitor_enter v -> Some v
  | Ir.Intrinsic (None, n, [ Ir.Var v ])
    when String.equal n Facade_compiler.Rt_names.lock_enter ->
      Some v
  | _ -> None

let as_exit = function
  | Ir.Monitor_exit v -> Some v
  | Ir.Intrinsic (None, n, [ Ir.Var v ])
    when String.equal n Facade_compiler.Rt_names.lock_exit ->
      Some v
  | _ -> None

let depth m v = Option.value ~default:0 (Smap.find_opt v m)

let enter v m = Smap.add v (depth m v + 1) m

(* An unmatched exit leaves the state unchanged; the findings pass reports
   it, and treating it as a no-op avoids cascading noise downstream. *)
let exit_ v m =
  match depth m v with
  | 0 -> m
  | 1 -> Smap.remove v m
  | d -> Smap.add v (d - 1) m

let step_instr st ins =
  match st with
  | Unreached | Conflict -> st
  | Held m -> (
      match as_enter ins, as_exit ins with
      | Some v, _ -> Held (enter v m)
      | None, Some v -> Held (exit_ v m)
      | None, None -> st)

let block_transfer (blk : Ir.block) st = List.fold_left step_instr st blk.Ir.instrs

let check ~where (m : Ir.meth) =
  if Array.length m.Ir.body = 0 then []
  else begin
    let cfg = Cfg.of_method m in
    let r =
      S.solve ~dir:Dataflow.Forward ~cfg ~init:(Held Smap.empty) ~bottom:Unreached
        ~transfer:(fun b st -> block_transfer m.Ir.body.(b) st)
    in
    let findings = ref [] in
    let report block index what =
      findings := Finding.make ~analysis ~where ~block ~index what :: !findings
    in
    Array.iteri
      (fun b (blk : Ir.block) ->
        match r.S.inb.(b) with
        | Unreached -> ()
        | Conflict ->
            (* Report only where the conflict originates: two predecessor
               paths (or a back edge into the entry) arrive with different
               held-monitor multisets. Propagated conflicts stay silent. *)
            let contribs =
              (if b = 0 then [ Held Smap.empty ] else [])
              @ Array.to_list (Array.map (fun p -> r.S.outb.(p)) cfg.Cfg.preds.(b))
            in
            let helds =
              List.filter_map (function Held m -> Some m | Unreached | Conflict -> None) contribs
            in
            let distinct =
              List.fold_left
                (fun acc m -> if List.exists (Smap.equal Int.equal m) acc then acc else m :: acc)
                [] helds
            in
            if List.length distinct >= 2 then
              report b (-1)
                "paths joining here disagree on held monitors (monitorenter not matched on all branches)"
        | Held m0 ->
            let st = ref m0 in
            List.iteri
              (fun i ins ->
                (match as_exit ins with
                | Some v when depth !st v = 0 ->
                    report b i (Printf.sprintf "monitorexit %s without a matching monitorenter" v)
                | Some _ | None -> ());
                match step_instr (Held !st) ins with
                | Held m' -> st := m'
                | Unreached | Conflict -> ())
              blk.Ir.instrs;
            (match blk.Ir.term with
            | Ir.Ret _ ->
                Smap.iter
                  (fun v d ->
                    report b (-1)
                      (Printf.sprintf "monitor on %s still held at return (depth %d)" v d))
                  !st
            | Ir.Jump _ | Ir.Branch _ -> ()))
      m.Ir.body;
    List.rev !findings
  end
