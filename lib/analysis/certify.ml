module Fc = Facade_compiler
module Rn = Fc.Rt_names
open Jir

(* The object-boundedness certifier (paper §2.3's O(t·n + p) claim, made
   checkable). The certificate re-derives the per-type facade-pool bounds
   from the *generated* program — the maximal [pool.param] slot index
   actually emitted, plus the "every data type gets slot 0" floor — and is
   cross-checked two ways:

   - statically against {!Fc.Bounds.as_array}, the bound the compiler
     sized the pools with (a mismatch means transform emitted an index
     the pools cannot serve, or reserved space no call site needs);
   - at runtime against [Exec_stats.max_pool_index] (the deepest slot any
     thread touched) and the VM's total facade count, which must be an
     exact multiple of the certified per-pool population.

   [receivers] counts one receiver facade per assigned type id — the
   population {!Pagestore.Facade_pool.create} actually builds per thread,
   a superset of the paper's "one per data class" (array type ids carry a
   receiver slot too even though array accesses never resolve one). *)

type t = {
  params : int array;        (* certified parameter-pool bound, by type id *)
  receivers : int;           (* receiver facades per pool instance *)
  per_thread : int;          (* receivers + Σ params: facades per thread *)
  paper_per_thread : int;    (* the paper's t·n count: data receivers + Σ *)
}

let of_pipeline (pl : Fc.Pipeline.t) =
  let layout = pl.Fc.Pipeline.layout in
  let n = Fc.Layout.num_types layout in
  let params = Array.make n 0 in
  (* returns and allocations bind through slot 0: every data class with a
     type id is served even when no call site passes it as a parameter *)
  List.iter
    (fun c ->
      match Fc.Layout.type_id layout c with
      | id -> params.(id) <- 1
      | exception Not_found -> ())
    (Fc.Classify.data_classes pl.Fc.Pipeline.classification);
  List.iter
    (fun (c : Ir.cls) ->
      List.iter
        (fun (m : Ir.meth) ->
          Ir.iter_instrs
            (function
              | Ir.Intrinsic (Some _, name, [ Ir.Imm (Ir.Cint tid); Ir.Imm (Ir.Cint idx) ])
                when String.equal name Rn.pool_param ->
                  if tid >= 0 && tid < n then
                    params.(tid) <- max params.(tid) (idx + 1)
              | _ -> ())
            m)
        c.Ir.cmethods)
    (Program.classes pl.Fc.Pipeline.transformed);
  {
    params;
    receivers = n;
    per_thread = n + Array.fold_left ( + ) 0 params;
    paper_per_thread = Fc.Bounds.total_facades_per_thread pl.Fc.Pipeline.bounds;
  }

let static_errors (pl : Fc.Pipeline.t) t =
  let compiled = Fc.Bounds.as_array pl.Fc.Pipeline.bounds in
  let layout = pl.Fc.Pipeline.layout in
  let errs = ref [] in
  if Array.length compiled <> Array.length t.params then
    errs :=
      Printf.sprintf "certificate covers %d type ids, compiler bounds cover %d"
        (Array.length t.params) (Array.length compiled)
      :: !errs
  else
    Array.iteri
      (fun id b ->
        if t.params.(id) <> b then
          errs :=
            Printf.sprintf
              "type %s (id %d): certified parameter bound %d, compiler bound %d"
              (Fc.Layout.name_of_type_id layout id)
              id t.params.(id) b
            :: !errs)
      compiled;
  List.rev !errs

let validate_runtime t ~max_pool_index ~facades_allocated =
  let errs = ref [] in
  List.iter
    (fun (tid, peak) ->
      let bound = if tid >= 0 && tid < Array.length t.params then t.params.(tid) else 0 in
      if peak >= bound then
        errs :=
          Printf.sprintf
            "pool for type id %d reached slot %d, certified bound is %d" tid peak
            bound
          :: !errs)
    (List.sort compare max_pool_index);
  if t.per_thread = 0 then begin
    if facades_allocated <> 0 then
      errs :=
        Printf.sprintf "certificate allows no facades but the VM allocated %d"
          facades_allocated
        :: !errs
  end
  else if facades_allocated mod t.per_thread <> 0 then
    errs :=
      Printf.sprintf
        "VM allocated %d facades, not a multiple of the certified %d per thread"
        facades_allocated t.per_thread
      :: !errs;
  match List.rev !errs with [] -> Ok () | es -> Error es

let to_json layout t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"receivers":%d,"per_thread":%d,"paper_per_thread":%d,"params":[|}
       t.receivers t.per_thread t.paper_per_thread);
  let first = ref true in
  Array.iteri
    (fun id bound ->
      if bound > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf {|{"type":%s,"id":%d,"bound":%d}|}
             (Finding.json_string (Fc.Layout.name_of_type_id layout id))
             id bound)
      end)
    t.params;
  Buffer.add_string b "]}";
  Buffer.contents b
