(** Boundary-leak detection (forward taint): the paper's interaction-point
    discipline (§3.5) as a checkable lint.

    Data references must cross from the data path into the control path
    only through the synthesized conversion functions (the [convert.to] /
    [convert.from] intrinsics). Given a classification, this analysis
    taints, inside every data-path method, the values that carry raw data
    references — variables of data type (per {!Facade_compiler.Classify.is_data_type}),
    allocations of data classes, and the page-reference-producing runtime
    intrinsics ([rt.alloc], [facade.read], [rt.get_ref], ...) — and
    reports any tainted value flowing into a control-path field store,
    static store, array store, or a non-conversion control-path call.
    Conversion intrinsics launder taint: their results are legitimate heap
    copies.

    Data-path methods are those of data classes, boundary classes, and
    facade classes of data classes. A data class whose facade counterpart
    exists in the same program (i.e. transformed output P′ keeping the
    original class for control-path use, §3.1) is the heap copy and is
    skipped: its data-typed values are converted heap instances. *)

val check : Facade_compiler.Classify.t -> Jir.Program.t -> Finding.t list

val check_method :
  Facade_compiler.Classify.t ->
  where:string ->
  declaring:string ->
  Jir.Ir.meth ->
  Finding.t list
(** Analyze a single method as a member of class [declaring]. Exposed for
    tests; {!check} applies it to every data-path method of the program. *)
