(** Control-flow graph of one jir method.

    Blocks are identified by their index in [meth.body]; block 0 is the
    entry. Successors come from the block terminator, predecessors are the
    inverse relation, and exits are the blocks ending in [Ret]. Branch
    targets outside the body (a structural error the verifier reports) are
    dropped rather than crashing, so the analyses stay total on malformed
    input. *)

type t = {
  nblocks : int;
  succs : int array array;  (** successor block indices, per block *)
  preds : int array array;  (** predecessor block indices, per block *)
  exits : int array;        (** blocks terminated by [Ret] *)
}

val of_method : Jir.Ir.meth -> t
