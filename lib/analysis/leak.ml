open Jir
module Classify = Facade_compiler.Classify
module Rt_names = Facade_compiler.Rt_names

let analysis = "boundary-leak"

let facade_suffix = "$Facade"

(* "C$Facade" -> Some "C" *)
let facade_base name =
  let n = String.length name and k = String.length facade_suffix in
  if n > k && String.equal (String.sub name (n - k) k) facade_suffix then
    Some (String.sub name 0 (n - k))
  else None

let is_data_path cl cname =
  Classify.is_data_class cl cname
  || Classify.is_boundary_class cl cname
  ||
  match facade_base cname with
  | Some base -> Classify.is_data_class cl base
  | None -> false

(* Intrinsics whose results are raw page/data references. *)
let page_ref_producers =
  [
    Rt_names.alloc;
    Rt_names.alloc_array;
    Rt_names.alloc_array_oversize;
    Rt_names.facade_read;
    Rt_names.get_field (Jtype.Ref "");
    Rt_names.array_get (Jtype.Ref "");
    Rt_names.checkcast;
    Rt_names.string_literal;
  ]

let is_conversion n =
  String.equal n Rt_names.convert_to || String.equal n Rt_names.convert_from

module S = Dataflow.Solver (struct
  type t = Vset.t

  let equal = Vset.equal
  let join = Vset.union
end)

let check_method cl ~where ~declaring (m : Ir.meth) =
  if Array.length m.Ir.body = 0 then []
  else begin
    let vtype v =
      if String.equal v "this" then Some (Jtype.Ref declaring) else Ir.var_type m v
    in
    let declared_data v =
      match vtype v with Some ty -> Classify.is_data_type cl ty | None -> false
    in
    let class_of v =
      match vtype v with Some (Jtype.Ref c) -> Some c | Some _ | None -> None
    in
    (* Taint of a definition, given the taint set before the instruction. *)
    let def_taint st ins =
      match ins with
      | Ir.Move (_, s) -> Vset.mem s st
      | Ir.Cast (d, s, _) -> Vset.mem s st || declared_data d
      | Ir.New (_, c) -> Classify.is_data_class cl c
      | Ir.New_array (_, ety, _) -> Classify.is_data_type cl (Jtype.Array ety)
      | Ir.Field_load (d, _, _) | Ir.Static_load (d, _, _) | Ir.Array_load (d, _, _) ->
          declared_data d
      | Ir.Call (Some r, _, _, _, _, _) -> declared_data r
      | Ir.Intrinsic (Some _, n, _) ->
          (not (is_conversion n)) && List.mem n page_ref_producers
      | Ir.Const _ | Ir.Binop _ | Ir.Unop _ | Ir.Array_length _ | Ir.Instance_of _
      | Ir.Call (None, _, _, _, _, _) | Ir.Intrinsic (None, _, _)
      | Ir.Field_store _ | Ir.Static_store _ | Ir.Array_store _ | Ir.Monitor_enter _
      | Ir.Monitor_exit _ | Ir.Iter_start | Ir.Iter_end ->
          false
    in
    let step st ins =
      match Defuse.def ins with
      | Some d -> if def_taint st ins then Vset.add d st else Vset.remove d st
      | None -> st
    in
    let entry =
      let seed s v = if declared_data v then Vset.add v s else s in
      let s = List.fold_left (fun s (v, _) -> seed s v) Vset.empty m.Ir.params in
      if m.Ir.mstatic then s else seed s "this"
    in
    let cfg = Cfg.of_method m in
    let r =
      S.solve ~dir:Dataflow.Forward ~cfg ~init:entry ~bottom:Vset.empty
        ~transfer:(fun b st -> List.fold_left step st m.Ir.body.(b).Ir.instrs)
    in
    let findings = ref [] in
    let report block index what =
      findings := Finding.make ~analysis ~where ~block ~index what :: !findings
    in
    let sink st b i ins =
      match ins with
      | Ir.Field_store (a, f, s) when Vset.mem s st -> (
          match class_of a with
          | Some ca when not (is_data_path cl ca) ->
              report b i
                (Printf.sprintf
                   "data reference %s stored into control-path field %s.%s without conversion"
                   s ca f)
          | Some _ | None -> ())
      | Ir.Static_store (c, f, s) when Vset.mem s st && not (is_data_path cl c) ->
          report b i
            (Printf.sprintf
               "data reference %s stored into control-path static %s.%s without conversion"
               s c f)
      | Ir.Array_store (a, _, s)
        when Vset.mem s st && (not (declared_data a)) && not (Vset.mem a st) ->
          report b i
            (Printf.sprintf
               "data reference %s stored into control-path array %s without conversion" s a)
      | Ir.Call (_, _, cls, name, recv, args) when not (is_data_path cl cls) ->
          List.iter
            (fun v ->
              if Vset.mem v st then
                report b i
                  (Printf.sprintf
                     "data reference %s passed to control-path method %s.%s without conversion"
                     v cls name))
            (Option.to_list recv @ args)
      | _ -> ()
    in
    Array.iteri
      (fun b (blk : Ir.block) ->
        let st = ref r.S.inb.(b) in
        List.iteri
          (fun i ins ->
            sink !st b i ins;
            st := step !st ins)
          blk.Ir.instrs)
      m.Ir.body;
    List.rev !findings
  end

let check cl (p : Program.t) =
  let skip_kept_original cname =
    Classify.is_data_class cl cname
    && Program.mem p (cname ^ facade_suffix)
  in
  List.concat_map
    (fun (c : Ir.cls) ->
      let cname = c.Ir.cname in
      if c.Ir.cinterface || (not (is_data_path cl cname)) || skip_kept_original cname
      then []
      else
        List.concat_map
          (fun (m : Ir.meth) ->
            check_method cl ~where:(cname ^ "." ^ m.Ir.mname) ~declaring:cname m)
          c.Ir.cmethods)
    (Program.classes p)
