type severity = Info | Warning | Error

type t = {
  analysis : string;
  where : string;
  block : int;
  index : int;
  what : string;
  severity : severity;
}

let make ~analysis ~where ?(block = -1) ?(index = -1) ?(severity = Error) what =
  { analysis; where; block; index; what; severity }

let of_verify_error (e : Jir.Verify.error) =
  make ~analysis:"verify" ~where:e.Jir.Verify.where e.Jir.Verify.what

let severity_label = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let at_least sev t = severity_rank t.severity >= severity_rank sev

(* CLI/CI ordering: (file is handled by the caller) method, location,
   then pass name — so diffs of lint output are stable across runs and
   hash-table iteration orders. *)
let compare a b =
  let c = String.compare a.where b.where in
  if c <> 0 then c
  else
    let c = Int.compare a.block b.block in
    if c <> 0 then c
    else
      let c = Int.compare a.index b.index in
      if c <> 0 then c
      else
        let c = String.compare a.analysis b.analysis in
        if c <> 0 then c else String.compare a.what b.what

let sort findings = List.sort_uniq compare findings

let to_string f =
  if f.block < 0 then Printf.sprintf "%s: [%s] %s" f.where f.analysis f.what
  else if f.index < 0 then Printf.sprintf "%s: b%d: [%s] %s" f.where f.block f.analysis f.what
  else Printf.sprintf "%s: b%d/%d: [%s] %s" f.where f.block f.index f.analysis f.what

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"analysis":%s,"severity":%s,"where":%s,"block":%d,"index":%d,"what":%s}|}
    (json_string f.analysis)
    (json_string (severity_label f.severity))
    (json_string f.where) f.block f.index (json_string f.what)

let list_to_json ?file findings =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  (match file with
  | Some f -> Buffer.add_string b (Printf.sprintf {|"file":%s,|} (json_string f))
  | None -> ());
  Buffer.add_string b (Printf.sprintf {|"count":%d,"findings":[|} (List.length findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (to_json f))
    findings;
  Buffer.add_string b "]}";
  Buffer.contents b
