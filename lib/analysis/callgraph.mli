(** The CHA call graph shared by the interprocedural concurrency analyses.

    Nodes are ["Class.method"] keys where the class is the {e declaring}
    class of the body. Virtual call edges reuse the devirtualization
    pass's class-hierarchy resolution; Special/Static edges walk the super
    chain. Classes that have a [$Facade] sibling in the same program are
    retained pre-transform originals, unreachable from the transformed
    entry, and are excluded from the graph. *)

type t

val key : cls:string -> name:string -> string

val kept_original : Jir.Program.t -> string -> bool
(** Is this class a pre-transform original kept alongside its [$Facade]
    twin (and therefore outside the analysis universe)? *)

val call_targets : Jir.Program.t -> Jir.Ir.call_kind -> string -> string -> string list
(** Possible callee keys of one call site (CHA for virtual calls). *)

val declaring : Jir.Program.t -> string -> string -> string option
(** Declaring class of a method, starting the lookup at the given class
    and walking the super chain. *)

val build : Jir.Program.t -> t

val program : t -> Jir.Program.t
val entry_key : t -> string
val callees : t -> string -> string list
val method_of_key : t -> string -> (Jir.Ir.cls * Jir.Ir.meth) option
val is_reachable : t -> string -> bool
(** Reachable from the program entry along call edges. *)

val reachable : t -> string list
(** Sorted keys reachable from the entry. *)

val reachable_from : t -> string list -> (string, unit) Hashtbl.t
(** Closure over call edges from a seed set of keys. *)

val iter_methods : t -> (string -> Jir.Ir.cls -> Jir.Ir.meth -> unit) -> unit
(** Every method in the analysis universe, in sorted key order. *)
