open Jir

module S = Dataflow.Solver (struct
  type t = Vset.t

  let equal = Vset.equal
  let join = Vset.inter
end)

let analysis = "def-assign"

let declared (m : Ir.meth) =
  let s =
    Vset.of_list (List.map fst m.Ir.params @ List.map fst m.Ir.locals)
  in
  if m.Ir.mstatic then s else Vset.add "this" s

let entry_assigned (m : Ir.meth) =
  let s = Vset.of_list (List.map fst m.Ir.params) in
  if m.Ir.mstatic then s else Vset.add "this" s

let block_transfer (blk : Ir.block) s =
  List.fold_left
    (fun s ins -> match Defuse.def ins with Some d -> Vset.add d s | None -> s)
    s blk.Ir.instrs

let check ~where (m : Ir.meth) =
  if Array.length m.Ir.body = 0 then []
  else begin
    let cfg = Cfg.of_method m in
    let uni = declared m in
    let r =
      S.solve ~dir:Dataflow.Forward ~cfg ~init:(entry_assigned m) ~bottom:uni
        ~transfer:(fun b s -> block_transfer m.Ir.body.(b) s)
    in
    let findings = ref [] in
    let report block index v =
      findings :=
        Finding.make ~analysis ~where ~block ~index
          (Printf.sprintf "variable %s may be used before assignment" v)
        :: !findings
    in
    Array.iteri
      (fun b (blk : Ir.block) ->
        let s = ref r.S.inb.(b) in
        List.iteri
          (fun i ins ->
            List.iter
              (fun v -> if Vset.mem v uni && not (Vset.mem v !s) then report b i v)
              (List.sort_uniq String.compare (Defuse.uses ins));
            match Defuse.def ins with
            | Some d -> s := Vset.add d !s
            | None -> ())
          blk.Ir.instrs;
        List.iter
          (fun v -> if Vset.mem v uni && not (Vset.mem v !s) then report b (-1) v)
          (Defuse.term_uses blk.Ir.term))
      m.Ir.body;
    List.rev !findings
  end
