(** Static race detection: Eraser-style locksets over the FACADE
    spawn/join structure.

    Threads are created by [sys.run_thread] and joined at the enclosing
    [Iter_end] (the runtime's iteration barrier), so an access races with
    a spawned thread only between the spawn site and the next iteration
    end; two spawned threads race with each other only when their spawn
    regions overlap. Accesses are field, static-field, array-element and
    P′ page-record reads/writes; a lock discharges a pair only when the
    held variable must-aliases a single non-summary abstract object in
    both threads.

    Sibling threads whose receivers are distinct (or summary) objects are
    checked against each other only through static fields — the FACADE
    worker idiom partitions instance state per worker, and flagging every
    same-site field access would drown real races in noise (DESIGN.md
    §12 discusses the tradeoff).

    Findings use analysis name ["race"] at {!Finding.Warning} severity.
    Programs with no [sys.run_thread] short-circuit to no findings. *)

val has_spawn : Jir.Program.t -> bool

val check : Jir.Program.t -> Finding.t list
