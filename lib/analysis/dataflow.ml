type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (L : LATTICE) = struct
  type result = {
    inb : L.t array;
    outb : L.t array;
  }

  let solve ~dir ~(cfg : Cfg.t) ~init ~bottom ~transfer =
    let n = cfg.Cfg.nblocks in
    let inb = Array.make n bottom in
    let outb = Array.make n bottom in
    if n > 0 then begin
      let is_exit = Array.make n false in
      Array.iter (fun b -> is_exit.(b) <- true) cfg.Cfg.exits;
      let q = Queue.create () in
      let on_q = Array.make n false in
      let push b =
        if not on_q.(b) then begin
          on_q.(b) <- true;
          Queue.add b q
        end
      in
      (* Seed in an order that tends to reach the fixpoint quickly. *)
      (match dir with
      | Forward -> for b = 0 to n - 1 do push b done
      | Backward -> for b = n - 1 downto 0 do push b done);
      while not (Queue.is_empty q) do
        let b = Queue.pop q in
        on_q.(b) <- false;
        match dir with
        | Forward ->
            let i =
              Array.fold_left
                (fun acc p -> L.join acc outb.(p))
                (if b = 0 then init else bottom)
                cfg.Cfg.preds.(b)
            in
            inb.(b) <- i;
            let o = transfer b i in
            if not (L.equal o outb.(b)) then begin
              outb.(b) <- o;
              Array.iter push cfg.Cfg.succs.(b)
            end
        | Backward ->
            let o =
              Array.fold_left
                (fun acc s -> L.join acc inb.(s))
                (if is_exit.(b) then init else bottom)
                cfg.Cfg.succs.(b)
            in
            outb.(b) <- o;
            let i = transfer b o in
            if not (L.equal i inb.(b)) then begin
              inb.(b) <- i;
              Array.iter push cfg.Cfg.preds.(b)
            end
      done
    end;
    { inb; outb }
end
