(** Def/use extraction per jir instruction.

    Every jir instruction defines at most one variable; everything else it
    touches is a use. Terminators only use. *)

val def : Jir.Ir.instr -> Jir.Ir.var option
val uses : Jir.Ir.instr -> Jir.Ir.var list
val term_uses : Jir.Ir.terminator -> Jir.Ir.var list
