open Jir

type site = {
  block : int;
  index : int;
  var : Ir.var;
}

module Sset = Set.Make (struct
  type t = site

  let compare = compare
end)

module S = Dataflow.Solver (struct
  type t = Sset.t

  let equal = Sset.equal
  let join = Sset.union
end)

type t = {
  reach_in : Sset.t array;
  reach_out : Sset.t array;
}

let kill_var v s = Sset.filter (fun d -> not (String.equal d.var v)) s

let block_transfer b (blk : Ir.block) s =
  let s = ref s in
  List.iteri
    (fun i ins ->
      match Defuse.def ins with
      | Some v -> s := Sset.add { block = b; index = i; var = v } (kill_var v !s)
      | None -> ())
    blk.Ir.instrs;
  !s

let analyze (m : Ir.meth) =
  let cfg = Cfg.of_method m in
  let entry =
    let params = List.map fst m.Ir.params in
    let params = if m.Ir.mstatic then params else "this" :: params in
    List.fold_left
      (fun s v -> Sset.add { block = -1; index = -1; var = v } s)
      Sset.empty params
  in
  let r =
    S.solve ~dir:Dataflow.Forward ~cfg ~init:entry ~bottom:Sset.empty
      ~transfer:(fun b s -> block_transfer b m.Ir.body.(b) s)
  in
  { reach_in = r.S.inb; reach_out = r.S.outb }

let defs_of s v = Sset.elements (Sset.filter (fun d -> String.equal d.var v) s)
