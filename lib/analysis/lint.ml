open Jir

let check_method ~where m = Def_assign.check ~where m @ Monitors.check ~where m

let check_program ?classification (p : Program.t) =
  let per_method =
    List.concat_map
      (fun (c : Ir.cls) ->
        List.concat_map
          (fun (m : Ir.meth) -> check_method ~where:(c.Ir.cname ^ "." ^ m.Ir.mname) m)
          c.Ir.cmethods)
      (Program.classes p)
  in
  let races = Races.check p in
  match classification with
  | Some cl -> per_method @ Leak.check cl p @ races
  | None -> per_method @ races

let verify_findings p = List.map Finding.of_verify_error (Verify.check_program p)
