(** Analysis findings, with positions and JSON encoding.

    A finding locates a violation by method ([where], "Class.method"),
    basic-block index and instruction index within the block. [index] is
    [-1] for the block terminator or block-level findings; [block] is [-1]
    for method- or class-level findings (e.g. structural verifier errors
    wrapped for uniform CLI output). *)

type t = {
  analysis : string;  (** e.g. "def-assign", "monitors", "boundary-leak" *)
  where : string;
  block : int;
  index : int;
  what : string;
}

val make : analysis:string -> where:string -> ?block:int -> ?index:int -> string -> t

val of_verify_error : Jir.Verify.error -> t
(** Wrap a structural verifier error as an ["verify"] finding. *)

val to_string : t -> string

val to_json : t -> string

val list_to_json : ?file:string -> t list -> string
(** A JSON object [{"file": ..., "count": n, "findings": [...]}]; the
    [file] key is omitted when not provided. *)
