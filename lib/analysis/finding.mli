(** Analysis findings, with positions, severities and JSON encoding.

    A finding locates a violation by method ([where], "Class.method"),
    basic-block index and instruction index within the block. [index] is
    [-1] for the block terminator or block-level findings; [block] is [-1]
    for method- or class-level findings (e.g. structural verifier errors
    wrapped for uniform CLI output). *)

type severity = Info | Warning | Error

type t = {
  analysis : string;  (** e.g. "def-assign", "monitors", "race" *)
  where : string;
  block : int;
  index : int;
  what : string;
  severity : severity;
}

val make :
  analysis:string ->
  where:string ->
  ?block:int ->
  ?index:int ->
  ?severity:severity ->
  string ->
  t
(** [severity] defaults to [Error] — the historical analyses all report
    definite invariant violations. *)

val of_verify_error : Jir.Verify.error -> t
(** Wrap a structural verifier error as an ["verify"] finding. *)

val severity_label : severity -> string
val severity_rank : severity -> int

val at_least : severity -> t -> bool
(** Is the finding at or above the given severity? *)

val compare : t -> t -> int
(** Deterministic CLI order: (method, block, index, analysis, message). *)

val sort : t list -> t list
(** [List.sort_uniq compare] — the canonical output order. *)

val to_string : t -> string

val json_string : string -> string
(** JSON string literal escaping, shared by the other emitters. *)

val to_json : t -> string

val list_to_json : ?file:string -> t list -> string
(** A JSON object [{"file": ..., "count": n, "findings": [...]}]; the
    [file] key is omitted when not provided. *)
