(** Live-variable analysis (backward, may).

    A variable is live at a point if some path from that point reads it
    before writing it. Used as the framework's backward exemplar and by
    tests; produces no findings itself. *)

type t = {
  live_in : Vset.t array;   (** live variables at block entry *)
  live_out : Vset.t array;  (** live variables at block exit *)
}

val analyze : Jir.Ir.meth -> t

val live_in : t -> int -> Vset.t
val live_out : t -> int -> Vset.t
