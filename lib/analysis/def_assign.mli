(** Definite assignment (forward, must).

    Upgrades the structural verifier's "declared" check to "initialized
    along all paths": a use of a declared variable that is not assigned on
    every path from entry is reported. Parameters and the implicit [this]
    count as assigned at entry; uses of undeclared variables are left to
    {!Jir.Verify} and not double-reported here. *)

val check : where:string -> Jir.Ir.meth -> Finding.t list
