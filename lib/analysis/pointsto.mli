(** Andersen-style, flow- and context-insensitive points-to analysis over
    the {!Callgraph} universe.

    Abstract objects are allocation sites ([New], [New_array], string
    literals, and in P' the [rt.alloc*]/[convert.*] intrinsics). Facade
    plumbing ([pool.param]/[pool.receiver]/[pool.resolve]/[facade.bind]/
    [facade.read]) is transparent: facade variables alias the page objects
    they are bound to, so lock identity and escape behaviour attach to the
    page record in both the original program and P'. *)

type t

type site = {
  skey : string;
  sblock : int;
  sindex : int;
  sclass : string option;
  stid : int option;
  ssummary : bool;
}

module Iset : Set.S with type elt = int

val blocks_in_cycle : Jir.Ir.meth -> bool array
(** Per-block: is the block on a CFG cycle (may execute more than once)? *)

val build : ?cg:Callgraph.t -> Jir.Program.t -> t

val callgraph : t -> Callgraph.t

val pts : t -> mkey:string -> Jir.Ir.var -> Iset.t
(** Points-to set of a variable in the method with key [mkey]. *)

val class_of : t -> int -> string option
(** Class of an abstract object: named at the site, or (in P') resolved
    through the type-id map recovered from [pool.*]/[rt.checkcast]
    destination types. *)

val is_summary : t -> int -> bool
(** May the abstract object denote more than one runtime object? *)

val site_of : t -> int -> string * int * int
val num_objs : t -> int

val field_pts : t -> int -> string -> Iset.t
val fields_of : t -> int -> string list
val static_pts : t -> cls:string -> field:string -> Iset.t
val all_static_pts : t -> Iset.t

val spawn_sites : t -> (string * int * int * Jir.Ir.var) list
(** Every [sys.run_thread] site in the universe: (method key, block,
    index, operand variable). *)

val run_targets : t -> mkey:string -> Jir.Ir.var -> string list
(** Method keys a [sys.run_thread] on the given operand may execute:
    [run] resolved on the classes of the operand's points-to set, falling
    back to the operand's declared type. Sorted. *)
