(** Monitor-pairing analysis (forward).

    The static counterpart of the paper's §3.2 lock-pool protocol: on
    every path, each [Monitor_enter v] must be matched by a [Monitor_exit
    v] before the method returns, and no [Monitor_exit] may run without a
    preceding enter. Tracking is per variable name (the standard
    alias-insensitive approximation), with reentrant nesting counted. The
    transformed program's [lock.enter]/[lock.exit] intrinsics follow the
    same protocol and are recognized too, so the lint applies to P′ as
    well as P.

    Reported violations: an exit without a matching enter, a monitor still
    held at a [Ret], and join points whose incoming paths disagree on the
    held-monitor multiset (e.g. an enter on only one branch arm). *)

val check : where:string -> Jir.Ir.meth -> Finding.t list

val as_enter : Jir.Ir.instr -> Jir.Ir.var option
(** The monitored variable, if the instruction is a [Monitor_enter] or the
    P′ [lock.enter] intrinsic. Shared with the race detector's lockset
    dataflow. *)

val as_exit : Jir.Ir.instr -> Jir.Ir.var option
