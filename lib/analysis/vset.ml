(* Variable sets — the lattice carrier shared by the set-based analyses. *)
include Set.Make (String)
