open Jir
module Iset = Pointsto.Iset
module Rn = Facade_compiler.Rt_names
module Smap = Map.Make (String)

(* Eraser-style static race detection over the spawn/join structure of
   FACADE programs.

   Thread structure. The only spawn primitive is the [sys.run_thread]
   intrinsic, and the only join is the enclosing iteration boundary:
   the runtime joins every outstanding thread at [Iter_end] (the paper's
   iteration-based reclamation depends on it). So happens-before is
   simple: an access in the spawning thread is concurrent with a spawned
   thread's execution iff it sits on a path between the [run_thread] site
   and the next [Iter_end]; two spawned threads are concurrent iff their
   spawn regions overlap — which, with iteration-scoped joins, reduces to
   "spawned in the same open region".

   Locksets. Must-held monitor sets are computed per method with the same
   forward dataflow as {!Monitors} (both [monitorenter] and the P'
   [lock.*] intrinsics), then mapped to abstract lock objects: a held
   variable only discharges a race if it must-aliases a single non-summary
   object — otherwise two threads may lock different objects. Entry
   locksets propagate interprocedurally as the intersection over all
   reachable call sites.

   Sibling precision. Two threads spawned from the same open region with
   receivers that must-alias the same single object share all their state,
   and get the full per-field lockset check (the [threads] sample and its
   seeded racy twin). Sibling threads whose receivers are distinct or
   summary objects follow the FACADE worker idiom — each worker owns its
   slice of the data — and are checked against each other only through
   static fields; this is a deliberate bug-finder tradeoff, documented in
   DESIGN.md §12, that keeps partitioned workers (pagerank-par) quiet. *)

let analysis = "race"

type access = {
  amkey : string;
  ablock : int;
  aindex : int;
  abase : Iset.t option;  (* None: static, keyed by afield = "Cls.f" *)
  afield : string;
  awrite : bool;
}

(* ---------- lockset dataflow (per method, over variables) ---------- *)

type lstate = Lunreached | Lheld of int Smap.t

module Lsolve = Dataflow.Solver (struct
  type t = lstate

  let equal a b =
    match (a, b) with
    | Lunreached, Lunreached -> true
    | Lheld x, Lheld y -> Smap.equal Int.equal x y
    | (Lunreached | Lheld _), _ -> false

  (* Must-analysis: meet is intersection with min depth. *)
  let join a b =
    match (a, b) with
    | Lunreached, x | x, Lunreached -> x
    | Lheld x, Lheld y ->
        Lheld
          (Smap.merge
             (fun _ a b ->
               match (a, b) with Some a, Some b -> Some (min a b) | _ -> None)
             x y)
end)

let lock_step st ins =
  match st with
  | Lunreached -> st
  | Lheld m -> (
      match (Monitors.as_enter ins, Monitors.as_exit ins) with
      | Some v, _ -> Lheld (Smap.add v (Option.value ~default:0 (Smap.find_opt v m) + 1) m)
      | None, Some v ->
          Lheld
            (match Smap.find_opt v m with
            | None | Some 1 -> Smap.remove v m
            | Some d -> Smap.add v (d - 1) m)
      | None, None -> st)

(* held variable sets at every (block, index) position of a method *)
let locksets_of (m : Ir.meth) =
  if Array.length m.Ir.body = 0 then [||]
  else begin
    let cfg = Cfg.of_method m in
    let r =
      Lsolve.solve ~dir:Dataflow.Forward ~cfg ~init:(Lheld Smap.empty)
        ~bottom:Lunreached
        ~transfer:(fun b st -> List.fold_left lock_step st m.Ir.body.(b).Ir.instrs)
    in
    Array.mapi
      (fun b (blk : Ir.block) ->
        let st = ref r.Lsolve.inb.(b) in
        Array.of_list
          (List.map
             (fun ins ->
               let held =
                 match !st with
                 | Lheld m -> Smap.fold (fun v _ acc -> v :: acc) m []
                 | Lunreached -> []
               in
               st := lock_step !st ins;
               held)
             blk.Ir.instrs))
      m.Ir.body
  end

(* A held variable discharges races only when it must-aliases one
   non-summary object. *)
let lock_objs pt mkey vars =
  List.filter_map
    (fun v ->
      let s = Pointsto.pts pt ~mkey v in
      match Iset.elements s with
      | [ o ] when not (Pointsto.is_summary pt o) -> Some o
      | _ -> None)
    vars
  |> List.sort_uniq Int.compare

(* ---------- spawn regions (per method, over spawn-site ids) ---------- *)

module Ss = Set.Make (Int)

type sstate = Sunreached | Sopen of Ss.t

module Ssolve = Dataflow.Solver (struct
  type t = sstate

  let equal a b =
    match (a, b) with
    | Sunreached, Sunreached -> true
    | Sopen x, Sopen y -> Ss.equal x y
    | (Sunreached | Sopen _), _ -> false

  (* May-analysis: union. *)
  let join a b =
    match (a, b) with
    | Sunreached, x | x, Sunreached -> x
    | Sopen x, Sopen y -> Sopen (Ss.union x y)
end)

(* ---------- the detector ---------- *)

let has_spawn p =
  List.exists
    (fun (c : Ir.cls) ->
      List.exists
        (fun m ->
          let found = ref false in
          Ir.iter_instrs
            (function
              | Ir.Intrinsic (_, n, _) when String.equal n Rn.run_thread -> found := true
              | _ -> ())
            m;
          !found)
        c.Ir.cmethods)
    (Program.classes p)

let is_page_get n =
  String.length n > 7 && String.equal (String.sub n 0 7) "rt.get_"

let is_page_set n =
  String.length n > 7 && String.equal (String.sub n 0 7) "rt.set_"

let is_page_aget n =
  String.length n > 8 && String.equal (String.sub n 0 8) "rt.aget_"

let is_page_aset n =
  String.length n > 8 && String.equal (String.sub n 0 8) "rt.aset_"

let page_field = function
  | Some (Ir.Imm (Ir.Cint off)) -> Printf.sprintf "#%d" off
  | _ -> "#?"

let fields_clash a b =
  String.equal a b
  || (String.length a > 0 && a.[0] = '#' && String.length b > 0 && b.[0] = '#'
     && (String.equal a "#?" || String.equal b "#?"))

(* Access events of one instruction (base variable resolved later). *)
let accesses_of_instr pt mkey (ins : Ir.instr) =
  let base v = Some (Pointsto.pts pt ~mkey v) in
  match ins with
  | Ir.Field_load (_, a, f) -> [ (base a, f, false) ]
  | Ir.Field_store (a, f, _) -> [ (base a, f, true) ]
  | Ir.Static_load (_, c, f) -> [ (None, c ^ "." ^ f, false) ]
  | Ir.Static_store (c, f, _) -> [ (None, c ^ "." ^ f, true) ]
  | Ir.Array_load (_, a, _) -> [ (base a, "[]", false) ]
  | Ir.Array_store (a, _, _) -> [ (base a, "[]", true) ]
  | Ir.Intrinsic (_, n, args) -> (
      let argv j =
        match List.nth_opt args j with Some (Ir.Var v) -> Some v | _ -> None
      in
      let on_base j f w =
        match argv j with Some v -> [ (base v, f, w) ] | None -> []
      in
      if is_page_get n then on_base 0 (page_field (List.nth_opt args 1)) false
      else if is_page_set n then on_base 0 (page_field (List.nth_opt args 1)) true
      else if is_page_aget n then on_base 0 "[]" false
      else if is_page_aset n then on_base 0 "[]" true
      else if String.equal n Rn.arraycopy then
        on_base 0 "[]" false @ on_base 2 "[]" true
      else [])
  | _ -> []

let conflict (e1 : access) (l1 : Iset.t) (e2 : access) (l2 : Iset.t) =
  (e1.awrite || e2.awrite)
  && fields_clash e1.afield e2.afield
  && (match (e1.abase, e2.abase) with
     | None, None -> true (* same static field: afields already equal *)
     | Some b1, Some b2 -> not (Iset.is_empty (Iset.inter b1 b2))
     | None, Some _ | Some _, None -> false)
  && Iset.is_empty (Iset.inter l1 l2)

let check (p : Program.t) =
  if not (has_spawn p) then []
  else begin
    let cg = Callgraph.build p in
    let pt = Pointsto.build ~cg p in
    let spawns =
      (* only spawns reachable from the entry create threads *)
      List.filter (fun (mk, _, _, _) -> Callgraph.is_reachable cg mk)
        (Pointsto.spawn_sites pt)
    in
    if spawns = [] then []
    else begin
      let spawn_arr = Array.of_list spawns in
      let spawn_id = Hashtbl.create 8 in
      Array.iteri (fun i (mk, b, ix, _) -> Hashtbl.replace spawn_id (mk, b, ix) i) spawn_arr;
      (* --- per-spawn child method sets --- *)
      let child_methods =
        Array.map
          (fun (mk, _, _, v) -> Callgraph.reachable_from cg (Pointsto.run_targets pt ~mkey:mk v))
          spawn_arr
      in
      (* --- open-region dataflow in every method containing spawns --- *)
      let spawn_methods =
        List.sort_uniq String.compare (List.map (fun (mk, _, _, _) -> mk) spawns)
      in
      (* (mkey, block, index) -> open spawn set at that position; plus the
         set open at each call site, to taint callees *)
      let open_at = Hashtbl.create 64 in
      let callee_open = Hashtbl.create 16 in
      List.iter
        (fun mk ->
          match Callgraph.method_of_key cg mk with
          | None -> ()
          | Some (_, m) when Array.length m.Ir.body = 0 -> ()
          | Some (_, m) ->
              let cfg = Cfg.of_method m in
              let step_pos b i st ins =
                match st with
                | Sunreached -> st
                | Sopen s -> (
                    match ins with
                    | Ir.Iter_end -> Sopen Ss.empty
                    | Ir.Intrinsic (None, n, [ Ir.Var _ ])
                      when String.equal n Rn.run_thread -> (
                        match Hashtbl.find_opt spawn_id (mk, b, i) with
                        | Some id -> Sopen (Ss.add id s)
                        | None -> st)
                    | _ -> st)
              in
              let r =
                Ssolve.solve ~dir:Dataflow.Forward ~cfg ~init:(Sopen Ss.empty)
                  ~bottom:Sunreached
                  ~transfer:(fun b st ->
                    List.fold_left
                      (fun (st, i) ins -> (step_pos b i st ins, i + 1))
                      (st, 0) m.Ir.body.(b).Ir.instrs
                    |> fst)
              in
              Array.iteri
                (fun b (blk : Ir.block) ->
                  let st = ref r.Ssolve.inb.(b) in
                  List.iteri
                    (fun i ins ->
                      (match !st with
                      | Sopen s when not (Ss.is_empty s) -> (
                          Hashtbl.replace open_at (mk, b, i) s;
                          (* calls made while spawns are open run their
                             whole callee closure concurrently *)
                          match ins with
                          | Ir.Call (_, kind, cls, name, _, _) ->
                              List.iter
                                (fun tk ->
                                  let prev =
                                    Option.value ~default:Ss.empty
                                      (Hashtbl.find_opt callee_open tk)
                                  in
                                  Hashtbl.replace callee_open tk (Ss.union prev s))
                                (Callgraph.call_targets p kind cls name)
                          | _ -> ())
                      | _ -> ());
                      st := step_pos b i !st ins)
                    blk.Ir.instrs)
                m.Ir.body)
        spawn_methods;
      (* close callee_open over call edges *)
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun tk s ->
            List.iter
              (fun tk' ->
                let prev = Option.value ~default:Ss.empty (Hashtbl.find_opt callee_open tk') in
                if not (Ss.subset s prev) then begin
                  Hashtbl.replace callee_open tk' (Ss.union prev s);
                  changed := true
                end)
              (Callgraph.callees cg tk))
          (Hashtbl.copy callee_open)
      done;
      (* --- interprocedural entry locksets (intersection over call sites) --- *)
      let locksets = Hashtbl.create 32 in
      Callgraph.iter_methods cg (fun mk _ m -> Hashtbl.replace locksets mk (locksets_of m));
      let held_at mk b i =
        match Hashtbl.find_opt locksets mk with
        | Some arr when b < Array.length arr && i < Array.length arr.(b) ->
            lock_objs pt mk arr.(b).(i)
        | _ -> []
      in
      let entry_locks : (string, Iset.t option ref) Hashtbl.t = Hashtbl.create 32 in
      (* None = "no call site seen yet" = top *)
      Callgraph.iter_methods cg (fun mk _ _ -> Hashtbl.replace entry_locks mk (ref None));
      let entry_of mk =
        match Hashtbl.find_opt entry_locks mk with
        | Some { contents = Some s } -> s
        | _ -> Iset.empty
      in
      let changed = ref true in
      while !changed do
        changed := false;
        Callgraph.iter_methods cg (fun mk _ m ->
            Ir.iteri_instrs
              (fun b i ins ->
                match ins with
                | Ir.Call (_, kind, cls, name, _, _) ->
                    let here =
                      Iset.union (entry_of mk) (Iset.of_list (held_at mk b i))
                    in
                    List.iter
                      (fun tk ->
                        match Hashtbl.find_opt entry_locks tk with
                        | None -> ()
                        | Some r -> (
                            match !r with
                            | None ->
                                r := Some here;
                                changed := true
                            | Some prev ->
                                let next = Iset.inter prev here in
                                if not (Iset.equal next prev) then begin
                                  r := Some next;
                                  changed := true
                                end))
                      (Callgraph.call_targets p kind cls name)
                | _ -> ())
              m)
      done;
      (* entry methods of spawned threads start with no inherited locks:
         the spawner's held monitors are not held by the child *)
      Array.iter
        (fun (mk, _, _, v) ->
          List.iter
            (fun tk ->
              match Hashtbl.find_opt entry_locks tk with
              | Some r -> r := Some Iset.empty
              | None -> ())
            (Pointsto.run_targets pt ~mkey:mk v))
        spawn_arr;
      let lockset_at mk b i = Iset.union (entry_of mk) (Iset.of_list (held_at mk b i)) in
      (* --- collect events --- *)
      let events_of_method mk =
        match Callgraph.method_of_key cg mk with
        | None -> []
        | Some (_, m) ->
            let acc = ref [] in
            Ir.iteri_instrs
              (fun b i ins ->
                List.iter
                  (fun (abase, afield, awrite) ->
                    let skip =
                      match abase with
                      | Some s -> Iset.is_empty s
                      | None -> false
                    in
                    if not skip then
                      acc :=
                        { amkey = mk; ablock = b; aindex = i; abase; afield; awrite }
                        :: !acc)
                  (accesses_of_instr pt mk ins))
              m;
            List.rev !acc
      in
      let child_events =
        Array.map
          (fun methods ->
            List.concat_map events_of_method
              (List.sort String.compare
                 (Hashtbl.fold (fun k () acc -> k :: acc) methods [])))
          child_methods
      in
      (* spawner events: any access at an open position, or anywhere in a
         method reachable from a call made at an open position *)
      let spawner_events = ref [] in
      Callgraph.iter_methods cg (fun mk _ m ->
          let whole_open = Option.value ~default:Ss.empty (Hashtbl.find_opt callee_open mk) in
          Ir.iteri_instrs
            (fun b i ins ->
              let pos_open =
                Ss.union whole_open
                  (Option.value ~default:Ss.empty (Hashtbl.find_opt open_at (mk, b, i)))
              in
              if not (Ss.is_empty pos_open) then
                List.iter
                  (fun (abase, afield, awrite) ->
                    let skip =
                      match abase with Some s -> Iset.is_empty s | None -> false
                    in
                    if not skip then
                      spawner_events :=
                        ( { amkey = mk; ablock = b; aindex = i; abase; afield; awrite },
                          pos_open )
                        :: !spawner_events)
                  (accesses_of_instr pt mk ins))
            m);
      (* --- must-alias gating between sibling threads --- *)
      let recv_singleton s =
        let mk, _, _, v = spawn_arr.(s) in
        match Iset.elements (Pointsto.pts pt ~mkey:mk v) with
        | [ o ] when not (Pointsto.is_summary pt o) -> Some o
        | _ -> None
      in
      let siblings_share s1 s2 =
        match (recv_singleton s1, recv_singleton s2) with
        | Some a, Some b -> a = b
        | _ -> false
      in
      let multi_spawn s =
        let mk, b, _, _ = spawn_arr.(s) in
        if not (String.equal mk (Callgraph.entry_key cg)) then true
        else
          match Callgraph.method_of_key cg mk with
          | Some (_, m) when Array.length m.Ir.body > 0 ->
              let cyc = Pointsto.blocks_in_cycle m in
              b < Array.length cyc && cyc.(b)
          | _ -> false
      in
      (* overlap: two spawn ids ever open simultaneously? *)
      let overlaps = Hashtbl.create 16 in
      let note_overlap s1 s2 =
        if s1 <> s2 || multi_spawn s1 then begin
          let a, b = if s1 <= s2 then (s1, s2) else (s2, s1) in
          Hashtbl.replace overlaps (a, b) ()
        end
      in
      Hashtbl.iter
        (fun _ s -> Ss.iter (fun a -> Ss.iter (fun b -> note_overlap a b) s) s)
        open_at;
      Hashtbl.iter
        (fun _ s -> Ss.iter (fun a -> Ss.iter (fun b -> note_overlap a b) s) s)
        callee_open;
      (* --- conflicts --- *)
      let findings = ref [] in
      let seen = Hashtbl.create 16 in
      let spawn_desc s =
        let mk, b, i, _ = spawn_arr.(s) in
        Printf.sprintf "%s:b%d/%d" mk b i
      in
      let report (e : access) (e' : access) why =
        let k = (e.amkey, e.ablock, e.aindex, e.afield, e'.amkey) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          let what =
            Printf.sprintf
              "possible data race on %s: %s here and %s at %s:b%d/%d with disjoint locksets (%s)"
              (if e.abase = None then "static field " ^ e.afield
               else "field " ^ e.afield)
              (if e.awrite then "write" else "read")
              (if e'.awrite then "write" else "read")
              e'.amkey e'.ablock e'.aindex why
          in
          findings :=
            Finding.make ~analysis ~where:e.amkey ~block:e.ablock ~index:e.aindex
              ~severity:Finding.Warning what
            :: !findings
        end
      in
      let lockset_of (e : access) = lockset_at e.amkey e.ablock e.aindex in
      (* spawner × child *)
      List.iter
        (fun ((e : access), open_set) ->
          Ss.iter
            (fun s ->
              List.iter
                (fun (e' : access) ->
                  if conflict e (lockset_of e) e' (lockset_of e') then
                    report e e'
                      (Printf.sprintf "spawner is concurrent with thread spawned at %s"
                         (spawn_desc s)))
                child_events.(s))
            open_set)
        !spawner_events;
      (* child × child for overlapping spawns *)
      Hashtbl.iter
        (fun (s1, s2) () ->
          let full = siblings_share s1 s2 in
          List.iter
            (fun (e : access) ->
              List.iter
                (fun (e' : access) ->
                  let applicable =
                    full || (e.abase = None && e'.abase = None)
                  in
                  if applicable && conflict e (lockset_of e) e' (lockset_of e') then
                    report e e'
                      (Printf.sprintf "threads spawned at %s and %s run concurrently"
                         (spawn_desc s1) (spawn_desc s2)))
                child_events.(s2))
            child_events.(s1))
        overlaps;
      Finding.sort !findings
    end
  end
