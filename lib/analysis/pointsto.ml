open Jir
module Iset = Set.Make (Int)
module Rn = Facade_compiler.Rt_names

(* Andersen-style, flow- and context-insensitive points-to analysis over
   the {!Callgraph} universe. Abstract objects are allocation sites, one
   per [New]/[New_array]/string literal in the original program and per
   [rt.alloc]/[rt.alloc_array]/[convert.*] intrinsic in P'. Facades are
   modelled transparently: [pool.*]/[facade.bind]/[facade.read] copy the
   page-object set through the facade variable instead of introducing a
   facade object, so a variable holding a facade and the page reference it
   is bound to alias the same abstract objects — which is exactly what the
   lockset and escape analyses need, since lock identity and lifetime in
   P' attach to the page record, not the facade wrapper.

   [convert.to]/[convert.from] are deep copies across the control/data
   boundary and allocate a fresh site rather than aliasing their source.

   An abstract object is a "summary" (may denote several runtime objects)
   unless its site is in the entry method outside any CFG cycle — the only
   case where one site provably executes at most once. *)

type site = {
  skey : string;          (* declaring method key *)
  sblock : int;
  sindex : int;
  sclass : string option; (* class, when named at the site *)
  stid : int option;      (* P' type id, resolved through the tid map *)
  ssummary : bool;
}

type t = {
  cg : Callgraph.t;
  sites : site array;
  site_ids : (string * int * int, int) Hashtbl.t;
  vars : (string, Iset.t ref) Hashtbl.t;    (* "mkey::var" *)
  heap : (int * string, Iset.t ref) Hashtbl.t;
  statics : (string * string, Iset.t ref) Hashtbl.t;
  rets : (string, Iset.t ref) Hashtbl.t;
  tid_class : (int, string) Hashtbl.t;
  spawns : (string * int * int * Ir.var) list;
}

let vkey mkey v = mkey ^ "::" ^ v

let lookup tbl k =
  match Hashtbl.find_opt tbl k with Some r -> !r | None -> Iset.empty

let flow_into tbl k s changed =
  if not (Iset.is_empty s) then
    match Hashtbl.find_opt tbl k with
    | Some r ->
        if not (Iset.subset s !r) then begin
          r := Iset.union !r s;
          changed := true
        end
    | None ->
        Hashtbl.replace tbl k (ref s);
        changed := true

(* P' ref-typed page accessors; page field offsets are collapsed to one
   abstract field "#" (field-insensitive within a record), arrays to "[]". *)
let get_ref = Rn.get_field (Jtype.Ref "_")
let set_ref = Rn.set_field (Jtype.Ref "_")
let aget_ref = Rn.array_get (Jtype.Ref "_")
let aset_ref = Rn.array_set (Jtype.Ref "_")

let fresh_site_intrinsics =
  [ Rn.alloc; Rn.alloc_array; Rn.alloc_array_oversize; Rn.string_literal;
    Rn.convert_to; Rn.convert_from ]

let blocks_in_cycle (m : Ir.meth) =
  let cfg = Cfg.of_method m in
  let n = cfg.Cfg.nblocks in
  Array.init n (fun b ->
      (* b is in a cycle iff b is reachable from one of its successors *)
      let seen = Array.make n false in
      let rec visit x =
        if not seen.(x) then begin
          seen.(x) <- true;
          Array.iter visit cfg.Cfg.succs.(x)
        end
      in
      Array.iter visit cfg.Cfg.succs.(b);
      seen.(b))

let imm_int = function Ir.Imm (Ir.Cint n) -> Some n | _ -> None

let build ?cg p =
  let cg = match cg with Some c -> c | None -> Callgraph.build p in
  let sites = ref [] and nsites = ref 0 in
  let site_ids = Hashtbl.create 64 in
  let tid_class = Hashtbl.create 16 in
  let spawns = ref [] in
  Callgraph.iter_methods cg (fun mkey _ m ->
      if Array.length m.Ir.body > 0 then begin
        let in_cycle =
          if String.equal mkey (Callgraph.entry_key cg) then blocks_in_cycle m
          else [||]
        in
        let add_site b i sclass stid =
          let ssummary =
            (not (String.equal mkey (Callgraph.entry_key cg)))
            || (Array.length in_cycle > b && in_cycle.(b))
          in
          Hashtbl.replace site_ids (mkey, b, i) !nsites;
          sites := { skey = mkey; sblock = b; sindex = i; sclass; stid; ssummary } :: !sites;
          incr nsites
        in
        Ir.iteri_instrs
          (fun b i ins ->
            match ins with
            | Ir.New (_, c) -> add_site b i (Some c) None
            | Ir.New_array (_, _, _) -> add_site b i None None
            | Ir.Const (_, Ir.Cstr _) -> add_site b i (Some "java.lang.String") None
            | Ir.Intrinsic (Some _, n, args) when List.mem n fresh_site_intrinsics ->
                let stid =
                  if
                    String.equal n Rn.alloc
                    || String.equal n Rn.alloc_array
                    || String.equal n Rn.alloc_array_oversize
                  then match args with a0 :: _ -> imm_int a0 | [] -> None
                  else None
                in
                add_site b i None stid
            | Ir.Intrinsic (Some d, n, args)
              when String.equal n Rn.pool_receiver || String.equal n Rn.pool_param -> (
                match (args, Ir.var_type m d) with
                | a0 :: _, Some (Jtype.Ref c) -> (
                    match imm_int a0 with
                    | Some tid -> Hashtbl.replace tid_class tid c
                    | None -> ())
                | _ -> ())
            | Ir.Intrinsic (Some d, n, [ _; a1 ]) when String.equal n Rn.checkcast -> (
                match (imm_int a1, Ir.var_type m d) with
                | Some tid, Some (Jtype.Ref c) ->
                    if not (Hashtbl.mem tid_class tid) then
                      Hashtbl.replace tid_class tid c
                | _ -> ())
            | Ir.Intrinsic (None, n, [ Ir.Var v ]) when String.equal n Rn.run_thread ->
                spawns := (mkey, b, i, v) :: !spawns
            | _ -> ())
          m
      end);
  let t =
    {
      cg;
      sites = Array.of_list (List.rev !sites);
      site_ids;
      vars = Hashtbl.create 256;
      heap = Hashtbl.create 64;
      statics = Hashtbl.create 16;
      rets = Hashtbl.create 32;
      tid_class;
      spawns = List.rev !spawns;
    }
  in
  (* ---------- constraint fixpoint ---------- *)
  let changed = ref true in
  let var_set mkey v = lookup t.vars (vkey mkey v) in
  let var_add mkey v s = flow_into t.vars (vkey mkey v) s changed in
  let heap_load objs field =
    Iset.fold (fun o acc -> Iset.union acc (lookup t.heap (o, field))) objs Iset.empty
  in
  let heap_store objs field s =
    Iset.iter (fun o -> flow_into t.heap (o, field) s changed) objs
  in
  let site_set mkey b i =
    match Hashtbl.find_opt t.site_ids (mkey, b, i) with
    | Some id -> Iset.singleton id
    | None -> Iset.empty
  in
  let class_of_obj o =
    let s = t.sites.(o) in
    match s.sclass with
    | Some c -> Some c
    | None -> Option.bind s.stid (Hashtbl.find_opt t.tid_class)
  in
  let run_keys v_pts decl_ty =
    let of_class c =
      match Callgraph.declaring p c "run" with
      | Some d -> [ Callgraph.key ~cls:d ~name:"run" ]
      | None -> []
    in
    let from_pts =
      Iset.fold
        (fun o acc ->
          match class_of_obj o with Some c -> of_class c @ acc | None -> acc)
        v_pts []
    in
    let from_decl =
      match decl_ty with Some (Jtype.Ref c) -> of_class c | _ -> []
    in
    List.sort_uniq String.compare (from_pts @ from_decl)
  in
  let bind_call mkey ret recv args targets =
    List.iter
      (fun tk ->
        match Callgraph.method_of_key t.cg tk with
        | None -> ()
        | Some (_, callee) ->
            (match recv with
            | Some r when not callee.Ir.mstatic ->
                flow_into t.vars (vkey tk "this") (var_set mkey r) changed
            | Some _ | None -> ());
            let rec bind ps xs =
              match (ps, xs) with
              | (pv, _) :: ps', x :: xs' ->
                  flow_into t.vars (vkey tk pv) (var_set mkey x) changed;
                  bind ps' xs'
              | _, _ -> ()
            in
            bind callee.Ir.params args;
            match ret with
            | Some d -> var_add mkey d (lookup t.rets tk)
            | None -> ())
      targets
  in
  let step mkey (m : Ir.meth) b i ins =
    match ins with
    | Ir.New (d, _) | Ir.New_array (d, _, _) -> var_add mkey d (site_set mkey b i)
    | Ir.Const (d, Ir.Cstr _) -> var_add mkey d (site_set mkey b i)
    | Ir.Const _ | Ir.Binop _ | Ir.Unop _ | Ir.Array_length _ | Ir.Instance_of _
    | Ir.Monitor_enter _ | Ir.Monitor_exit _ | Ir.Iter_start | Ir.Iter_end ->
        ()
    | Ir.Move (d, s) | Ir.Cast (d, s, _) -> var_add mkey d (var_set mkey s)
    | Ir.Field_load (d, a, f) -> var_add mkey d (heap_load (var_set mkey a) f)
    | Ir.Field_store (a, f, s) -> heap_store (var_set mkey a) f (var_set mkey s)
    | Ir.Static_load (d, c, f) -> var_add mkey d (lookup t.statics (c, f))
    | Ir.Static_store (c, f, s) -> flow_into t.statics (c, f) (var_set mkey s) changed
    | Ir.Array_load (d, a, _) -> var_add mkey d (heap_load (var_set mkey a) "[]")
    | Ir.Array_store (a, _, s) -> heap_store (var_set mkey a) "[]" (var_set mkey s)
    | Ir.Call (ret, kind, cls, name, recv, args) ->
        bind_call mkey ret recv args (Callgraph.call_targets p kind cls name)
    | Ir.Intrinsic (dst, n, args) ->
        let argv j =
          match List.nth_opt args j with Some (Ir.Var v) -> Some v | _ -> None
        in
        let copy_through src =
          match (dst, src) with
          | Some d, Some sv -> var_add mkey d (var_set mkey sv)
          | _ -> ()
        in
        if List.mem n fresh_site_intrinsics then (
          match dst with
          | Some d -> var_add mkey d (site_set mkey b i)
          | None -> ())
        else if
          String.equal n Rn.pool_resolve
          || String.equal n Rn.facade_read
          || String.equal n Rn.checkcast
        then copy_through (argv 0)
        else if String.equal n Rn.facade_bind then (
          match (argv 0, argv 1) with
          | Some fc, Some r -> var_add mkey fc (var_set mkey r)
          | _ -> ())
        else if String.equal n Rn.run_thread then (
          match argv 0 with
          | Some v ->
              let pv = var_set mkey v in
              List.iter
                (fun tk ->
                  match Callgraph.method_of_key t.cg tk with
                  | Some (_, callee) when not callee.Ir.mstatic ->
                      flow_into t.vars (vkey tk "this") pv changed
                  | Some _ | None -> ())
                (run_keys pv (Ir.var_type m v))
          | None -> ())
        else if String.equal n get_ref then (
          match (dst, argv 0) with
          | Some d, Some base -> var_add mkey d (heap_load (var_set mkey base) "#")
          | _ -> ())
        else if String.equal n set_ref then (
          match (argv 0, argv 2) with
          | Some base, Some src -> heap_store (var_set mkey base) "#" (var_set mkey src)
          | _ -> ())
        else if String.equal n aget_ref then (
          match (dst, argv 0) with
          | Some d, Some base -> var_add mkey d (heap_load (var_set mkey base) "[]")
          | _ -> ())
        else if String.equal n aset_ref then (
          match (argv 0, argv 3) with
          | Some base, Some src -> heap_store (var_set mkey base) "[]" (var_set mkey src)
          | _ -> ())
        else if String.equal n Rn.arraycopy then
          match (argv 0, argv 2) with
          | Some src, Some dstv ->
              heap_store (var_set mkey dstv) "[]" (heap_load (var_set mkey src) "[]")
          | _ -> ()
  in
  while !changed do
    changed := false;
    Callgraph.iter_methods t.cg (fun mkey _ m ->
        Ir.iteri_instrs (step mkey m) m;
        Array.iter
          (fun (blk : Ir.block) ->
            match blk.Ir.term with
            | Ir.Ret (Some v) -> flow_into t.rets mkey (var_set mkey v) changed
            | Ir.Ret None | Ir.Jump _ | Ir.Branch _ -> ())
          m.Ir.body)
  done;
  t

(* ---------- queries ---------- *)

let callgraph t = t.cg

let pts t ~mkey v = lookup t.vars (vkey mkey v)

let class_of t o =
  let s = t.sites.(o) in
  match s.sclass with
  | Some c -> Some c
  | None -> Option.bind s.stid (Hashtbl.find_opt t.tid_class)

let is_summary t o = t.sites.(o).ssummary

let site_of t o =
  let s = t.sites.(o) in
  (s.skey, s.sblock, s.sindex)

let num_objs t = Array.length t.sites

let field_pts t o f = lookup t.heap (o, f)

let fields_of t o =
  Hashtbl.fold (fun (o', f) _ acc -> if o' = o then f :: acc else acc) t.heap []

let static_pts t ~cls ~field = lookup t.statics (cls, field)

let all_static_pts t =
  Hashtbl.fold (fun _ r acc -> Iset.union acc !r) t.statics Iset.empty

let spawn_sites t = t.spawns

let run_targets t ~mkey v =
  let m =
    match Callgraph.method_of_key t.cg mkey with Some (_, m) -> Some m | None -> None
  in
  let p = Callgraph.program t.cg in
  let pv = pts t ~mkey v in
  let of_class c =
    match Callgraph.declaring p c "run" with
    | Some d -> [ Callgraph.key ~cls:d ~name:"run" ]
    | None -> []
  in
  let from_pts =
    Iset.fold
      (fun o acc -> match class_of t o with Some c -> of_class c @ acc | None -> acc)
      pv []
  in
  let from_decl =
    match Option.bind m (fun m -> Ir.var_type m v) with
    | Some (Jtype.Ref c) -> of_class c
    | _ -> []
  in
  List.sort_uniq String.compare (from_pts @ from_decl)
