open Jir

type t = {
  nblocks : int;
  succs : int array array;
  preds : int array array;
  exits : int array;
}

let of_method (m : Ir.meth) =
  let n = Array.length m.Ir.body in
  let succs = Array.make n [||] in
  let preds = Array.make n [] in
  let exits = ref [] in
  Array.iteri
    (fun i (b : Ir.block) ->
      let ss =
        match b.Ir.term with
        | Ir.Ret _ ->
            exits := i :: !exits;
            []
        | Ir.Jump t -> [ t ]
        | Ir.Branch (_, t1, t2) -> if t1 = t2 then [ t1 ] else [ t1; t2 ]
      in
      let ss = List.filter (fun t -> t >= 0 && t < n) ss in
      succs.(i) <- Array.of_list ss;
      List.iter (fun t -> preds.(t) <- i :: preds.(t)) ss)
    m.Ir.body;
  {
    nblocks = n;
    succs;
    preds = Array.map (fun l -> Array.of_list (List.rev l)) preds;
    exits = Array.of_list (List.rev !exits);
  }
