open Jir

let def = function
  | Ir.Const (v, _)
  | Ir.Move (v, _)
  | Ir.Binop (v, _, _, _)
  | Ir.Unop (v, _, _)
  | Ir.New (v, _)
  | Ir.New_array (v, _, _)
  | Ir.Field_load (v, _, _)
  | Ir.Static_load (v, _, _)
  | Ir.Array_load (v, _, _)
  | Ir.Array_length (v, _)
  | Ir.Instance_of (v, _, _)
  | Ir.Cast (v, _, _) ->
      Some v
  | Ir.Call (ret, _, _, _, _, _) | Ir.Intrinsic (ret, _, _) -> ret
  | Ir.Field_store _ | Ir.Static_store _ | Ir.Array_store _ | Ir.Monitor_enter _
  | Ir.Monitor_exit _ | Ir.Iter_start | Ir.Iter_end ->
      None

let uses = function
  | Ir.Const _ | Ir.New _ | Ir.Static_load _ | Ir.Iter_start | Ir.Iter_end -> []
  | Ir.Move (_, s) | Ir.Unop (_, _, s) | Ir.Static_store (_, _, s)
  | Ir.Array_length (_, s) | Ir.Instance_of (_, s, _) | Ir.Cast (_, s, _)
  | Ir.New_array (_, _, s) | Ir.Monitor_enter s | Ir.Monitor_exit s ->
      [ s ]
  | Ir.Binop (_, _, x, y) -> [ x; y ]
  | Ir.Field_load (_, o, _) -> [ o ]
  | Ir.Field_store (o, _, s) -> [ o; s ]
  | Ir.Array_load (_, a, i) -> [ a; i ]
  | Ir.Array_store (a, i, s) -> [ a; i; s ]
  | Ir.Call (_, _, _, _, recv, args) -> Option.to_list recv @ args
  | Ir.Intrinsic (_, _, ops) ->
      List.filter_map (function Ir.Var v -> Some v | Ir.Imm _ -> None) ops

let term_uses = function
  | Ir.Ret (Some v) -> [ v ]
  | Ir.Ret None | Ir.Jump _ -> []
  | Ir.Branch (v, _, _) -> [ v ]
