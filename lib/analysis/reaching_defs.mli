(** Reaching definitions (forward, may).

    A definition site is a (block, instruction index, variable) triple;
    parameters and the implicit [this] are modelled as definitions at the
    pseudo-site [(-1, -1)]. A site reaches a point if some path from the
    site to the point does not redefine the variable. *)

type site = {
  block : int;  (** -1 for parameter/this entry definitions *)
  index : int;
  var : Jir.Ir.var;
}

module Sset : Set.S with type elt = site

type t = {
  reach_in : Sset.t array;
  reach_out : Sset.t array;
}

val analyze : Jir.Ir.meth -> t

val defs_of : Sset.t -> Jir.Ir.var -> site list
(** The definition sites of one variable within a reaching set. *)
