(** Thread/iteration escape analysis over the points-to abstraction.

    An abstract object escapes when it is heap-reachable from a
    [sys.run_thread] operand or a static field; otherwise it is
    iteration-local (its site executes inside an iteration frame, so the
    runtime reclaims it at [Iter_end]) or thread-local. Lock elision keys
    off {!escapes}. *)

type kind = Thread_local | Iteration_local | Escaping

val kind_label : kind -> string

type t

val build : Pointsto.t -> t

val escapes : t -> int -> bool
val kind_of : t -> int -> kind

val classify : t -> (int * kind) list

val counts : t -> int * int * int
(** (thread-local, iteration-local, escaping) site counts. *)

val site_report : t -> (string * int * int * string * kind) list
(** Sorted (method key, block, index, class, kind) per allocation site. *)
