(** Generic intraprocedural dataflow: a worklist fixpoint solver over a
    method's {!Cfg}, parameterized by direction and lattice.

    Every analysis in this library instantiates [Solver] — none carries its
    own fixpoint loop. The lattice only needs [equal] and [join]; the
    extremal values are passed per call:

    - [init] is the boundary value — at the entry block for a [Forward]
      analysis, at every [Ret] block for a [Backward] one;
    - [bottom] is the identity of [join] and the optimistic initial value
      of every block. For a may-analysis (join = union) it is the empty
      set; for a must-analysis (join = intersection) it is the universe.

    [transfer b x] is the whole-block transfer function: it maps the
    in-value of block [b] to its out-value (forward), or the out-value to
    the in-value (backward). Termination requires the usual monotone
    transfer over a finite-height lattice, which all clients here satisfy
    (finite variable and definition sets per method). *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (L : LATTICE) : sig
  type result = {
    inb : L.t array;   (** value at block entry *)
    outb : L.t array;  (** value at block exit *)
  }

  val solve :
    dir:direction ->
    cfg:Cfg.t ->
    init:L.t ->
    bottom:L.t ->
    transfer:(int -> L.t -> L.t) ->
    result
end
