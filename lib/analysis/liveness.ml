open Jir

module S = Dataflow.Solver (struct
  type t = Vset.t

  let equal = Vset.equal
  let join = Vset.union
end)

type t = {
  live_in : Vset.t array;
  live_out : Vset.t array;
}

(* out -> in: terminator first (it runs last), then instructions in
   reverse; at each instruction kill the def, then gen the uses. *)
let block_transfer (blk : Ir.block) out =
  let add s vs = List.fold_left (fun s v -> Vset.add v s) s vs in
  let s = add out (Defuse.term_uses blk.Ir.term) in
  List.fold_left
    (fun s ins ->
      let s = match Defuse.def ins with Some d -> Vset.remove d s | None -> s in
      add s (Defuse.uses ins))
    s
    (List.rev blk.Ir.instrs)

let analyze (m : Ir.meth) =
  let cfg = Cfg.of_method m in
  let r =
    S.solve ~dir:Dataflow.Backward ~cfg ~init:Vset.empty ~bottom:Vset.empty
      ~transfer:(fun b out -> block_transfer m.Ir.body.(b) out)
  in
  { live_in = r.S.inb; live_out = r.S.outb }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)
