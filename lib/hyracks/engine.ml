module Heap = Heapsim.Heap
module Clock = Heapsim.Sim_clock
module Store = Pagestore.Store

type mode = Object_mode | Facade_mode

type config = {
  mode : mode;
  heap_gb : float;
  machines : int;
  workers_per_machine : int;
  cost : Hcost.t;
  total_budget_gb : float;
  workers : int option;
  io_scale : float;
}

let default_config mode =
  {
    mode;
    heap_gb = 8.0;
    machines = 10;
    workers_per_machine = 8;
    cost = Hcost.default;
    total_budget_gb = 8.0;
    workers = None;
    io_scale = 5.0e-3;
  }

type metrics = {
  et : float;
  gt : float;
  peak_memory_mb : float;
  minor_gcs : int;
  major_gcs : int;
  heap_objects : int;
  data_objects : int;
  page_records : int;
  pages_created : int;
  distinct_keys : int;
  completed : bool;
  oom_at : float;
  wall_seconds : float;
  per_thread_records : (int * int * int) list;
}

type 'a outcome = {
  output : 'a option;
  metrics : metrics;
}

type ctx = {
  config : config;
  heap_ : Heap.t;
  clock_ : Clock.t;
  store_ : Store.t option;
  pool_ : Parallel.Pool.t option;
  mutable data_objects : int;
  mutable page_records : int;
  mutable distinct : int;
  mutable last_native : int;
  mutable last_pages : int;
  mutable wall_ : float;
  mutable store_threads : int;  (* highest registered store thread id *)
}

let scaled_gb = 1 lsl 20

let machine_slice config arr =
  let m = config.machines in
  let n = Array.length arr in
  let mine = ref [] in
  for i = n - 1 downto 0 do
    if i mod m = 0 then mine := arr.(i) :: !mine
  done;
  Array.of_list !mine

let heap c = c.heap_
let clock c = c.clock_
let store c = c.store_
let cfg c = c.config
let charge c cat s = Clock.charge c.clock_ cat s

let alloc_temps c ~count =
  Heap.alloc_many c.heap_ ~lifetime:Heap.Temp ~bytes_each:c.config.cost.Hcost.temp_bytes ~count

let note_data_objects c n = c.data_objects <- c.data_objects + n
let note_record c = c.page_records <- c.page_records + 1
let note_distinct c n = c.distinct <- c.distinct + n

let sync_native c =
  match c.store_ with
  | None -> ()
  | Some store ->
      let s = Store.stats store in
      let dn = s.Store.native_bytes - c.last_native in
      if dn > 0 then Heap.native_alloc c.heap_ ~bytes:dn
      else if dn < 0 then Heap.native_free c.heap_ ~bytes:(-dn);
      c.last_native <- s.Store.native_bytes;
      let dp = s.Store.pages_created - c.last_pages in
      if dp > 0 then Heap.alloc_many c.heap_ ~lifetime:Heap.Control ~bytes_each:48 ~count:dp;
      c.last_pages <- s.Store.pages_created

let parallel_time c t = t /. float_of_int c.config.workers_per_machine

(* ---------- measured parallelism (the [~workers:n] path) ---------- *)

let pool c = c.pool_

let io_wait c sim_seconds = Parallel.Measure.io_wait (sim_seconds *. c.config.io_scale)

let run_measured c cat tasks =
  match c.pool_ with
  | None -> invalid_arg "Engine.run_measured: config.workers is None"
  | Some pool ->
      let wall = Parallel.Measure.run_timed pool tasks in
      c.wall_ <- c.wall_ +. wall;
      Clock.charge c.clock_ cat (wall /. c.config.io_scale)

let register_store_thread c t =
  match c.store_ with
  | None -> ()
  | Some s ->
      Store.register_thread s t;
      if t > c.store_threads then c.store_threads <- t

let note_records c n = c.page_records <- c.page_records + n

let with_run config body =
  let heap_bytes = int_of_float (config.heap_gb *. float_of_int scaled_gb) in
  let clock_ = Clock.create () in
  let heap_ = Heap.create ~clock:clock_ (Heapsim.Hconfig.make ~heap_bytes ()) in
  let store_ =
    match config.mode with
    | Object_mode -> None
    | Facade_mode ->
        let s = Store.create () in
        Store.register_thread s 0;
        Some s
  in
  let pool_ =
    Option.map (fun w -> Parallel.Pool.create ~workers:(max 1 w)) config.workers
  in
  let c =
    {
      config;
      heap_;
      clock_;
      store_;
      pool_;
      data_objects = 0;
      page_records = 0;
      distinct = 0;
      last_native = 0;
      last_pages = 0;
      wall_ = 0.0;
      store_threads = 0;
    }
  in
  (* Framework-permanent state: frame pools, job metadata, thread pools. *)
  Heap.alloc_many heap_ ~lifetime:Heap.Permanent ~bytes_each:1024 ~count:256;
  let output, completed, oom_at =
    Fun.protect
      ~finally:(fun () -> Option.iter Parallel.Pool.shutdown pool_)
      (fun () ->
        match body c with
        | v -> (Some v, true, 0.0)
        | exception Heap.Out_of_memory { at_seconds; _ } -> (None, false, at_seconds))
  in
  sync_native c;
  let peak = Heap.peak_memory_bytes heap_ in
  (* Fairness rule for P' (§4.2): total footprint beyond the budget is an
     out-of-memory failure even if the run finished. *)
  let budget = int_of_float (config.total_budget_gb *. float_of_int scaled_gb) in
  let over_budget = config.mode = Facade_mode && peak > budget in
  let completed = completed && not over_budget in
  let oom_at = if over_budget then Clock.total clock_ else oom_at in
  let hs = Heap.stats heap_ in
  let metrics =
    {
      et = Clock.total clock_;
      gt = Clock.get clock_ Clock.Gc;
      peak_memory_mb = float_of_int peak /. float_of_int scaled_gb *. 1000.0;
      minor_gcs = hs.Heapsim.Gc_stats.minor_gcs;
      major_gcs = hs.Heapsim.Gc_stats.major_gcs;
      heap_objects = hs.Heapsim.Gc_stats.objects_allocated;
      data_objects = c.data_objects;
      page_records = c.page_records;
      pages_created =
        (match store_ with Some s -> (Store.stats s).Store.pages_created | None -> 0);
      distinct_keys = c.distinct;
      completed;
      oom_at;
      wall_seconds = c.wall_;
      per_thread_records =
        (match store_ with
        | None -> []
        | Some s ->
            List.concat_map
              (fun t ->
                match Store.thread_totals s ~thread:t with
                | Some tt -> [ (t, tt.Store.thread_records, tt.Store.thread_bytes) ]
                | None -> [])
              (List.init (c.store_threads + 1) Fun.id));
    }
  in
  { output = (if completed then output else None); metrics }
