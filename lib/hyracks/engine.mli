(** Shared machinery of the Hyracks cluster simulator.

    The cluster is shared-nothing and symmetric (10 machines × 8 workers,
    round-robin partitions, as §4.2's EC2 setup); the simulator executes
    one representative machine's work against one simulated JVM heap and
    reports machine time — which, by symmetry, is job time.

    Unlike GraphChi, Hyracks loads data up front: a job's working state
    (group tables, sort buffers) lives for the whole operator, so the
    facade iteration marks wrap one operator ("computation cycle"),
    exactly where the paper places them. *)

type mode = Object_mode | Facade_mode

type config = {
  mode : mode;
  heap_gb : float;          (** per-machine JVM heap (8 in the paper) *)
  machines : int;
  workers_per_machine : int;
  cost : Hcost.t;
  total_budget_gb : float;
      (** fairness cap for P′: heap + native beyond this counts as an
          out-of-memory failure (paper §4.2) *)
  workers : int option;
      (** [Some n]: worker-parallel phases run as [n] tasks on [n] real
          OCaml domains, the phase's simulated I/O is realized as
          blocking waits, and the clock is charged measured wall-clock
          (scaled by [io_scale]) instead of the analytic division by
          [workers_per_machine]. [None] (default): analytic path. *)
  io_scale : float;
      (** real seconds slept per simulated I/O second on the measured
          path (and the factor converting measured wall back to
          simulated seconds) *)
}

val default_config : mode -> config
(** 8 GB heap, 10 machines × 8 workers, 8 GB total budget, analytic
    parallelism ([workers = None]), [io_scale = 5e-3]. *)

type metrics = {
  et : float;
  gt : float;
  peak_memory_mb : float;   (** paper-equivalent MB (heap + native) *)
  minor_gcs : int;
  major_gcs : int;
  heap_objects : int;
  data_objects : int;
  page_records : int;
  pages_created : int;
  distinct_keys : int;      (** WC group cardinality on the machine *)
  completed : bool;
  oom_at : float;           (** the paper's OME(n) seconds *)
  wall_seconds : float;
      (** measured wall-clock accumulated by {!run_measured} batches;
          0.0 on the analytic path *)
  per_thread_records : (int * int * int) list;
      (** facade mode: per store-thread (id, records, bytes) page-manager
          totals, covering every registered worker thread *)
}

type 'a outcome = {
  output : 'a option;  (** job result; [None] on OOM *)
  metrics : metrics;
}

(** Internal run context handed to job implementations. *)
type ctx

val machine_slice : config -> 'a array -> 'a array
(** The representative machine's share of the input (round-robin). *)

val with_run : config -> (ctx -> 'a) -> 'a outcome
(** Set up heap/store/clock, run the job body, catch OOM, enforce the
    facade fairness cap, and collect metrics. *)

(** Accessors for job implementations. *)

val heap : ctx -> Heapsim.Heap.t
val clock : ctx -> Heapsim.Sim_clock.t
val store : ctx -> Pagestore.Store.t option
(** [Some] in facade mode. *)

val cfg : ctx -> config
val charge : ctx -> Heapsim.Sim_clock.category -> float -> unit
val alloc_temps : ctx -> count:int -> unit
val note_data_objects : ctx -> int -> unit
val note_record : ctx -> unit
val note_distinct : ctx -> int -> unit
val sync_native : ctx -> unit
val parallel_time : ctx -> float -> float
(** Divide worker-parallel compute across the machine's workers — the
    analytic path, used when [config.workers] is [None]. *)

val pool : ctx -> Parallel.Pool.t option
(** The domain pool, when [config.workers] is [Some _]. *)

val io_wait : ctx -> float -> unit
(** Realize [sim_seconds] of simulated I/O as a blocking sleep of
    [sim_seconds *. io_scale] real seconds. Called from inside tasks. *)

val run_measured : ctx -> Heapsim.Sim_clock.category -> (unit -> unit) list -> unit
(** Run a worker-parallel phase's tasks on the domain pool, measure its
    wall-clock, accumulate it into [metrics.wall_seconds], and charge
    [cat] with [wall /. io_scale] simulated seconds. Raises
    [Invalid_argument] on the analytic path. *)

val register_store_thread : ctx -> int -> unit
(** Register a worker's logical thread with the store (no-op in object
    mode); its page-manager totals appear in [metrics.per_thread_records]. *)

val note_records : ctx -> int -> unit
