module Heap = Heapsim.Heap
module Clock = Heapsim.Sim_clock
module Store = Pagestore.Store

type result = {
  top : (string * int) list;
  total_tokens : int;
  distinct : int;
}

let chunk = 8192

(* Paged group record layout: count i64 at offset 4, key bytes after. *)
let entry_type = 1
let count_off = 4

let top_k k counts =
  let all = List.of_seq counts in
  let cmp (w1, c1) (w2, c2) = if c1 <> c2 then compare c2 c1 else String.compare w1 w2 in
  let sorted = List.sort cmp all in
  List.filteri (fun i _ -> i < k) sorted

(* The [~workers] path: tokens are hash-partitioned across [nw] tasks, each
   with a private group table (and, in facade mode, a private store thread
   whose page manager holds its group records). The scan's disk I/O is
   realized as a blocking wait inside each task, so the measured wall-clock
   reflects I/O overlap across domains; heap charging stays on the calling
   domain (the heap simulator is not domain-safe) using per-task tallies. *)
let run_parallel c config (corpus : Workloads.Text_gen.t) =
  let cost = (Engine.cfg c).Engine.cost in
  let nw = max 1 (Option.get config.Engine.workers) in
  let words = Engine.machine_slice config corpus.Workloads.Text_gen.words in
  let n = Array.length words in
  (match Engine.store c with
  | Some s ->
      for t = 1 to nw do
        Engine.register_store_thread c t
      done;
      for t = 0 to nw do
        Store.iteration_start s ~thread:t
      done
  | None -> ());
  let parts = Array.make nw [] in
  for j = n - 1 downto 0 do
    let b = Hashtbl.hash words.(j) mod nw in
    parts.(b) <- words.(j) :: parts.(b)
  done;
  let counts = Array.init nw (fun _ -> Hashtbl.create 256) in
  let records : (string, Pagestore.Addr.t) Hashtbl.t array =
    Array.init nw (fun _ -> Hashtbl.create 256)
  in
  let task t () =
    let my = parts.(t) in
    (match Engine.store c with
    | None ->
        List.iter
          (fun w ->
            match Hashtbl.find_opt counts.(t) w with
            | Some k -> Hashtbl.replace counts.(t) w (k + 1)
            | None -> Hashtbl.replace counts.(t) w 1)
          my
    | Some store ->
        List.iter
          (fun w ->
            match Hashtbl.find_opt records.(t) w with
            | Some addr ->
                let k = Store.get_i64 store addr ~offset:count_off in
                Store.set_i64 store addr ~offset:count_off (k + 1)
            | None ->
                let len = String.length w in
                let addr =
                  Store.alloc_record store ~thread:(t + 1) ~type_id:entry_type
                    ~data_bytes:(cost.Hcost.entry_overhead_facade + len)
                in
                Store.set_i64 store addr ~offset:count_off 1;
                String.iteri
                  (fun i ch ->
                    Store.set_i8 store addr ~offset:(count_off + 8 + i) (Char.code ch))
                  w;
                Hashtbl.replace records.(t) w addr)
          my);
    (* The scan's disk reads for this partition, as real blocking time. *)
    Engine.io_wait c (float_of_int (List.length my) *. cost.Hcost.scan_per_token)
  in
  Engine.run_measured c Clock.Update (List.init nw task);
  (* Post-join heap accounting, equivalent to the sequential path's. *)
  let distinct = Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 counts in
  let distinct =
    match Engine.store c with
    | None -> distinct
    | Some _ -> Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 records
  in
  let temps_per_token =
    match config.Engine.mode with
    | Engine.Object_mode -> cost.Hcost.temps_per_token_object
    | Engine.Facade_mode -> cost.Hcost.temps_per_token_facade
  in
  Engine.alloc_temps c ~count:(int_of_float (float_of_int n *. temps_per_token));
  (match Engine.store c with
  | None ->
      Heap.alloc_many (Engine.heap c) ~lifetime:Heap.Permanent
        ~bytes_each:(cost.Hcost.entry_bytes_object / 2)
        ~count:(2 * distinct);
      Engine.note_data_objects c ((2 * distinct) + (2 * n))
  | Some _ ->
      Heap.alloc_many (Engine.heap c) ~lifetime:Heap.Permanent ~bytes_each:16
        ~count:distinct;
      Engine.note_records c distinct;
      Engine.sync_native c);
  Engine.note_distinct c distinct;
  (* Shuffle the local aggregates and reduce ([nw]-way parallel). *)
  Engine.charge c Clock.Update
    (float_of_int (corpus.Workloads.Text_gen.total_bytes / config.Engine.machines)
    *. cost.Hcost.shuffle_per_byte);
  Engine.charge c Clock.Update
    (float_of_int distinct *. cost.Hcost.reduce_per_key /. float_of_int nw);
  let final_counts =
    match Engine.store c with
    | None -> Seq.concat_map Hashtbl.to_seq (Array.to_seq counts)
    | Some store ->
        Seq.concat_map
          (fun recs ->
            Seq.map
              (fun (w, addr) -> (w, Store.get_i64 store addr ~offset:count_off))
              (Hashtbl.to_seq recs))
          (Array.to_seq records)
  in
  let top = top_k 20 final_counts in
  (match Engine.store c with
  | Some s ->
      for t = nw downto 0 do
        Store.iteration_end s ~thread:t
      done;
      Engine.sync_native c
  | None -> ());
  { top; total_tokens = n; distinct }

let run_sequential c config (corpus : Workloads.Text_gen.t) =
  (
      let cost = (Engine.cfg c).Engine.cost in
      let words = Engine.machine_slice config corpus.Workloads.Text_gen.words in
      let n = Array.length words in
      (match Engine.store c with
      | Some s -> Store.iteration_start s ~thread:0
      | None -> ());
      let counts : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let records : (string, Pagestore.Addr.t) Hashtbl.t = Hashtbl.create 1024 in
      let process_token_object w =
        (match Hashtbl.find_opt counts w with
        | Some k -> Hashtbl.replace counts w (k + 1)
        | None ->
            Hashtbl.replace counts w 1;
            (* String + HashMap.Entry + boxed count: data objects that stay
               live for the whole operator. *)
            Heap.alloc_many (Engine.heap c) ~lifetime:Heap.Permanent
              ~bytes_each:(cost.Hcost.entry_bytes_object / 2)
              ~count:2;
            Engine.note_data_objects c 2);
        (* The per-token String and tuple are also data objects; they die
           young. *)
        Engine.note_data_objects c 2
      in
      let process_token_facade store w =
        match Hashtbl.find_opt records w with
        | Some addr ->
            let k = Store.get_i64 store addr ~offset:count_off in
            Store.set_i64 store addr ~offset:count_off (k + 1)
        | None ->
            let len = String.length w in
            let addr =
              Store.alloc_record store ~thread:0 ~type_id:entry_type
                ~data_bytes:(cost.Hcost.entry_overhead_facade + len)
            in
            Store.set_i64 store addr ~offset:count_off 1;
            String.iteri
              (fun i ch -> Store.set_i8 store addr ~offset:(count_off + 8 + i) (Char.code ch))
              w;
            Engine.note_record c;
            Hashtbl.replace records w addr;
            (* The hash index slot is control-path heap state. *)
            Heap.alloc (Engine.heap c) ~lifetime:Heap.Permanent ~bytes:16
      in
      let per_token_cost =
        match config.Engine.mode with
        | Engine.Object_mode ->
            cost.Hcost.scan_per_token +. cost.Hcost.map_per_token_object
            +. cost.Hcost.probe_per_token_object
        | Engine.Facade_mode ->
            cost.Hcost.scan_per_token +. cost.Hcost.map_per_token_facade
            +. cost.Hcost.probe_per_token_facade
      in
      let temps_per_token =
        match config.Engine.mode with
        | Engine.Object_mode -> cost.Hcost.temps_per_token_object
        | Engine.Facade_mode -> cost.Hcost.temps_per_token_facade
      in
      let i = ref 0 in
      while !i < n do
        let hi = min n (!i + chunk) in
        (* Charge the chunk's compute first, so an OOM mid-stream reports a
           meaningful OME(t). *)
        Engine.charge c Clock.Update
          (Engine.parallel_time c (float_of_int (hi - !i) *. per_token_cost));
        Engine.alloc_temps c
          ~count:(int_of_float (float_of_int (hi - !i) *. temps_per_token));
        (match Engine.store c with
        | None ->
            for j = !i to hi - 1 do
              process_token_object words.(j)
            done
        | Some store ->
            for j = !i to hi - 1 do
              process_token_facade store words.(j)
            done;
            Engine.sync_native c);
        i := hi
      done;
      let distinct =
        match Engine.store c with
        | None -> Hashtbl.length counts
        | Some _ -> Hashtbl.length records
      in
      Engine.note_distinct c distinct;
      (* Shuffle the local aggregates and reduce. *)
      Engine.charge c Clock.Update
        (float_of_int (corpus.Workloads.Text_gen.total_bytes / config.Engine.machines)
        *. cost.Hcost.shuffle_per_byte);
      Engine.charge c Clock.Update
        (Engine.parallel_time c (float_of_int distinct *. cost.Hcost.reduce_per_key));
      (match config.Engine.mode with
      | Engine.Object_mode ->
          Heap.alloc_many (Engine.heap c) ~lifetime:Heap.Permanent ~bytes_each:64
            ~count:distinct;
          Engine.note_data_objects c distinct
      | Engine.Facade_mode -> ());
      (* Read the final counts back (in P' this exercises the records). *)
      let final_counts =
        match Engine.store c with
        | None -> Hashtbl.to_seq counts
        | Some store ->
            Seq.map
              (fun (w, addr) -> (w, Store.get_i64 store addr ~offset:count_off))
              (Hashtbl.to_seq records)
      in
      let top = top_k 20 final_counts in
      (match Engine.store c with
      | Some s ->
          Store.iteration_end s ~thread:0;
          Engine.sync_native c
      | None -> ());
      { top; total_tokens = n; distinct })

let run config (corpus : Workloads.Text_gen.t) =
  Engine.with_run config (fun c ->
      match Engine.pool c with
      | Some _ -> run_parallel c config corpus
      | None -> run_sequential c config corpus)
